(* The execution planner: pushdown rules, join-order safety, and a
   differential check that planner-on and planner-off evaluation produce
   identical resultsets over a generated query corpus. *)

module Value = Duodb.Value
module Executor = Duoengine.Executor
module Planner = Duoengine.Planner
open Duosql.Ast

let db = Fixtures.movie_db ()
let parse = Fixtures.parse

(* --- resultset comparison (exact, including row order) --- *)

let result_equal a b =
  match a, b with
  | Error e1, Error e2 -> String.equal e1 e2
  | Ok r1, Ok r2 ->
      List.length r1.Executor.res_cols = List.length r2.Executor.res_cols
      && List.for_all2
           (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && Duodb.Datatype.equal t1 t2)
           r1.Executor.res_cols r2.Executor.res_cols
      && List.length r1.Executor.res_rows = List.length r2.Executor.res_rows
      && List.for_all2
           (fun ra rb ->
             Array.length ra = Array.length rb
             && Array.for_all2 Value.equal ra rb)
           r1.Executor.res_rows r2.Executor.res_rows
  | Ok _, Error _ | Error _, Ok _ -> false

let check_differential db q =
  let on = Executor.run ~planner:true db q in
  let off = Executor.run ~planner:false db q in
  if not (result_equal on off) then
    Alcotest.failf "planner on/off diverge on %s" (Duosql.Pretty.query q)

(* --- pushdown rules --- *)

let plan_exn ?enabled q =
  match Planner.plan ?enabled db q with
  | Ok p -> p
  | Error e -> Alcotest.failf "plan failed: %s" e

let test_pushdown_and () =
  let q = parse "SELECT movies.name FROM movies WHERE movies.year < 1995 AND movies.revenue > 300" in
  let p = plan_exn q in
  Alcotest.(check bool) "pushdown applied" true p.Planner.plan_pushdown;
  Alcotest.(check bool) "no residual" true (p.Planner.plan_residual = None);
  match p.Planner.plan_pushed with
  | [ (t, cond) ] ->
      Alcotest.(check string) "pushed to movies" "movies" t;
      Alcotest.(check int) "both predicates" 2 (List.length cond.c_preds)
  | _ -> Alcotest.fail "expected one pushed table"

let test_pushdown_and_multi_table () =
  let q =
    parse
      "SELECT m.name FROM actor a JOIN starring s ON a.aid = s.aid JOIN movies m \
       ON s.mid = m.mid WHERE a.gender = 'male' AND m.year > 2000"
  in
  let p = plan_exn q in
  Alcotest.(check bool) "pushdown applied" true p.Planner.plan_pushdown;
  Alcotest.(check int) "two scan filters" 2 (List.length p.Planner.plan_pushed);
  Alcotest.(check bool) "no residual" true (p.Planner.plan_residual = None)

let test_no_pushdown_or_across_tables () =
  (* A disjunct spanning tables must NOT be pushed: a row failing one
     disjunct in its own table can still pass via the other table. *)
  let q =
    parse
      "SELECT m.name FROM actor a JOIN starring s ON a.aid = s.aid JOIN movies m \
       ON s.mid = m.mid WHERE a.gender = 'male' OR m.year > 2000"
  in
  let p = plan_exn q in
  Alcotest.(check bool) "no pushdown" false p.Planner.plan_pushdown;
  Alcotest.(check bool) "pushed empty" true (p.Planner.plan_pushed = []);
  Alcotest.(check bool) "whole WHERE residual" true
    (match p.Planner.plan_residual with
    | Some c -> List.length c.c_preds = 2 && c.c_conn = Or
    | None -> false);
  check_differential db q

let test_pushdown_or_single_table () =
  (* A disjunction confined to one table is a valid scan filter. *)
  let q = parse "SELECT movies.name FROM movies WHERE movies.year < 1995 OR movies.year > 2015" in
  let p = plan_exn q in
  Alcotest.(check bool) "pushdown applied" true p.Planner.plan_pushdown;
  (match p.Planner.plan_pushed with
  | [ ("movies", cond) ] -> Alcotest.(check bool) "disjunction kept" true (cond.c_conn = Or)
  | _ -> Alcotest.fail "expected movies scan filter");
  check_differential db q

let test_planner_off_pushes_nothing () =
  let q = parse "SELECT movies.name FROM movies WHERE movies.year < 1995" in
  let p = plan_exn ~enabled:false q in
  Alcotest.(check bool) "nothing pushed" true (p.Planner.plan_pushed = []);
  Alcotest.(check bool) "canonical order" true p.Planner.plan_in_order

(* --- join ordering --- *)

let test_selective_table_first () =
  let q =
    parse
      "SELECT a.name FROM actor a JOIN starring s ON a.aid = s.aid JOIN movies m \
       ON s.mid = m.mid WHERE m.name = 'Gravity'"
  in
  let p = plan_exn q in
  Alcotest.(check string) "base is the filtered table" "movies" p.Planner.plan_base;
  Alcotest.(check bool) "execution order differs from FROM order" false
    p.Planner.plan_in_order;
  check_differential db q

let test_reorder_preserves_group_order () =
  (* First-seen group order depends on joined-row order; the provenance
     sort must restore it under any execution order. *)
  let q =
    parse
      "SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid \
       JOIN movies m ON s.mid = m.mid WHERE m.year > 1990 GROUP BY a.name"
  in
  check_differential db q;
  let rows = Fixtures.run_rows db
      "SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid \
       JOIN movies m ON s.mid = m.mid WHERE m.year > 1990 GROUP BY a.name"
  in
  (* group order follows actor insertion order, as it always has *)
  match rows with
  | (first :: _ : Value.t array list) ->
      Alcotest.(check string) "first group" "Tom Hanks" (Value.to_display first.(0))
  | [] -> Alcotest.fail "no groups"

let test_cache_keyed_by_pushed_preds () =
  let cache = Executor.create_cache () in
  let q1 = parse "SELECT movies.name FROM movies WHERE movies.year < 1995" in
  let q2 = parse "SELECT movies.revenue FROM movies WHERE movies.year < 1995" in
  let q3 = parse "SELECT movies.name FROM movies WHERE movies.year < 2000" in
  ignore (Executor.run_exn ~cache db q1);
  ignore (Executor.run_exn ~cache db q2);
  ignore (Executor.run_exn ~cache db q3);
  let hits, misses, pushdowns = Executor.cache_stats cache in
  (* q2 shares q1's (FROM, pushed) relation; q3 differs in the predicate *)
  Alcotest.(check int) "hits" 1 hits;
  Alcotest.(check int) "misses" 2 misses;
  Alcotest.(check int) "pushdown builds" 2 pushdowns

(* --- differential corpus: generated Spider-like gold queries --- *)

let differential_corpus () =
  let split = Duobench.Spider_gen.mini ~seed:11 ~n_dbs:4 ~per_db:24 () in
  let checked = ref 0 in
  List.iter
    (fun task ->
      let tdb = List.assoc task.Duobench.Spider_gen.sp_db split.Duobench.Spider_gen.databases in
      check_differential tdb task.Duobench.Spider_gen.sp_gold;
      incr checked)
    split.Duobench.Spider_gen.tasks;
  Alcotest.(check bool) "corpus non-trivial" true (!checked >= 60)

(* Randomized single-database differential: random predicates over the
   movie fixture, planner on vs off. *)
let prop_differential_random =
  let op_gen = QCheck.Gen.oneofl [ Lt; Le; Gt; Ge; Eq; Neq ] in
  QCheck.Test.make ~name:"planner on/off agree on random WHERE" ~count:200
    (QCheck.make
       QCheck.Gen.(triple op_gen (int_range 1950 2030) (oneofl [ And; Or ])))
    (fun (op, threshold, conn) ->
      let q =
        {
          (simple
             [ proj_col (col "a" "name") ]
             { f_tables = [ "actor"; "starring"; "movies" ];
               f_joins =
                 [ { j_from = col "actor" "aid"; j_to = col "starring" "aid" };
                   { j_from = col "starring" "mid"; j_to = col "movies" "mid" } ] })
          with
          q_select = [ proj_col (col "actor" "name"); proj_col (col "movies" "name") ];
          q_where =
            Some
              { c_preds =
                  [ pred (col "movies" "year") op (Value.Int threshold);
                    pred (col "actor" "birth_yr") Lt (Value.Int 1965) ];
                c_conn = conn };
        }
      in
      result_equal (Executor.run ~planner:true db q) (Executor.run ~planner:false db q))

let suite =
  [
    Alcotest.test_case "pushdown: AND single table" `Quick test_pushdown_and;
    Alcotest.test_case "pushdown: AND across tables" `Quick test_pushdown_and_multi_table;
    Alcotest.test_case "pushdown: OR across tables refused" `Quick
      test_no_pushdown_or_across_tables;
    Alcotest.test_case "pushdown: OR within one table" `Quick
      test_pushdown_or_single_table;
    Alcotest.test_case "planner off pushes nothing" `Quick test_planner_off_pushes_nothing;
    Alcotest.test_case "join order: selective base first" `Quick test_selective_table_first;
    Alcotest.test_case "reorder preserves group order" `Quick
      test_reorder_preserves_group_order;
    Alcotest.test_case "cache keyed by (FROM, pushed)" `Quick
      test_cache_keyed_by_pushed_preds;
    Alcotest.test_case "differential: generated corpus" `Slow differential_corpus;
    QCheck_alcotest.to_alcotest prop_differential_random;
  ]
