module Json = Duoserve.Json
module Protocol = Duoserve.Protocol
module Server = Duoserve.Server
module Enumerate = Duocore.Enumerate
module Duoquest = Duocore.Duoquest

(* --- the JSON codec --------------------------------------------------- *)

let test_json_roundtrip () =
  let values =
    [
      Json.Null;
      Json.Bool true;
      Json.Num 3.0;
      Json.Num (-0.25);
      Json.Str "with \"quotes\", \\ and \n newline";
      Json.List [ Json.Num 1.0; Json.Str "x"; Json.Null ];
      Json.Obj
        [
          ("a", Json.List []);
          ("b", Json.Obj [ ("nested", Json.Bool false) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' ->
          Alcotest.(check string)
            "print/parse round-trip" (Json.to_string v) (Json.to_string v')
      | Error e -> Alcotest.failf "round-trip parse failed: %s" e)
    values

let test_json_parse_cases () =
  (match Json.parse "  {\"k\" : [1, 2.5, \"\\u0041\\n\"]} " with
  | Ok j ->
      Alcotest.(check string)
        "whitespace and escapes" "{\"k\":[1,2.5,\"A\\n\"]}" (Json.to_string j)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed %S" bad
      | Error _ -> ())
    [ "{nope"; "[1,]"; "\"unterminated"; "{} trailing"; ""; "{\"a\":}" ]

(* --- protocol round-trips --------------------------------------------- *)

let sample_tsq =
  Duocore.Tsq.make
    ~types:[ Duodb.Datatype.Text; Duodb.Datatype.Number ]
    ~tuples:
      [
        [ Duocore.Tsq.Exact (Duodb.Value.Text "Forrest Gump"); Duocore.Tsq.Any ];
        [
          Duocore.Tsq.Any;
          Duocore.Tsq.Range (Duodb.Value.Int 1990, Duodb.Value.Int 2000);
        ];
      ]
    ~sorted:true ~limit:3 ()

let test_request_roundtrip () =
  let reqs =
    [
      Protocol.Open_session
        {
          Protocol.op_db = "movies";
          op_nlq = "movie names and years";
          op_tsq = Some sample_tsq;
          op_literals = Some [ Duodb.Value.Text "Forrest Gump"; Duodb.Value.Int 3 ];
          op_max_pops = Some 500;
          op_max_candidates = Some 5;
          op_time_budget_s = Some 2.5;
        };
      Protocol.Refine_tsq (7, sample_tsq);
      Protocol.Get_candidates (7, Some 3);
      Protocol.Get_candidates (7, None);
      Protocol.Cancel 7;
      Protocol.Close 7;
      Protocol.List_dbs;
      Protocol.Stats;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      let line = Protocol.request_to_line req in
      match Protocol.request_of_line line with
      | Ok req' ->
          Alcotest.(check string)
            "encode/decode round-trip" line
            (Protocol.request_to_line req')
      | Error e -> Alcotest.failf "decode of %s failed: %s" line e)
    reqs

let test_tsq_wire_cells () =
  (* null = Any, scalar = Exact, {"lo","hi"} = Range; integral numbers
     become Int *)
  let line =
    "{\"tuples\":[[null,\"x\",3,2.5,{\"lo\":1,\"hi\":4}]]}"
  in
  match Json.parse line with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok j -> (
      match Protocol.tsq_of_json j with
      | Error e -> Alcotest.failf "tsq decode: %s" e
      | Ok t -> (
          match t.Duocore.Tsq.tuples with
          | [ [ a; b; c; d; e ] ] ->
              let open Duocore.Tsq in
              Alcotest.(check bool) "any" true (a = Any);
              Alcotest.(check bool) "exact text" true
                (b = Exact (Duodb.Value.Text "x"));
              Alcotest.(check bool) "exact int" true (c = Exact (Duodb.Value.Int 3));
              Alcotest.(check bool) "exact float" true
                (d = Exact (Duodb.Value.Float 2.5));
              Alcotest.(check bool) "range" true
                (e = Range (Duodb.Value.Int 1, Duodb.Value.Int 4))
          | _ -> Alcotest.fail "wrong tuple shape"))

(* --- golden request/response transcripts over handle_line ------------- *)

let make_server ?(max_sessions = 8) ?(slice = 50) () =
  let config =
    {
      Server.max_sessions;
      slice_pops = slice;
      session_config =
        { Enumerate.default_config with
          Enumerate.max_pops = 2_000;
          max_candidates = 8;
          time_budget_s = 20.0 };
    }
  in
  Server.create config [ ("movies", Fixtures.movie_db ()) ]

let transcript server lines =
  List.map (fun line -> Server.handle_line server line) lines

let check_transcript name expected got =
  Alcotest.(check (list string)) name expected got

let test_golden_open_and_errors () =
  let server = make_server () in
  check_transcript "open + error goldens"
    [
      (* malformed JSON *)
      "{\"ok\":false,\"error\":\"malformed JSON: expected '\\\"', found 'n' at byte 1\"}";
      (* not an object op *)
      "{\"ok\":false,\"error\":\"missing \\\"op\\\"\"}";
      (* unknown op *)
      "{\"ok\":false,\"error\":\"unknown op \\\"frobnicate\\\"\"}";
      (* missing fields *)
      "{\"ok\":false,\"error\":\"missing \\\"nlq\\\"\"}";
      (* unknown database *)
      "{\"ok\":false,\"error\":\"unknown database \\\"nope\\\"\"}";
      (* a good open *)
      "{\"ok\":true,\"session\":1,\"status\":\"running\"}";
      (* bad tsq shape *)
      "{\"ok\":false,\"error\":\"bad tsq: expected an object\"}";
      (* unknown session *)
      "{\"ok\":false,\"error\":\"unknown session 99\"}";
    ]
    (transcript server
       [
         "{nope";
         "[1,2]";
         "{\"op\":\"frobnicate\"}";
         "{\"op\":\"open_session\",\"db\":\"movies\"}";
         "{\"op\":\"open_session\",\"db\":\"nope\",\"nlq\":\"names\"}";
         "{\"op\":\"open_session\",\"db\":\"movies\",\"nlq\":\"movie names\"}";
         "{\"op\":\"open_session\",\"db\":\"movies\",\"nlq\":\"names\",\"tsq\":[]}";
         "{\"op\":\"get_candidates\",\"session\":99}";
       ]);
  Server.destroy server

let test_golden_list_and_stats () =
  let server = make_server () in
  check_transcript "list_dbs and stats goldens"
    [
      "{\"ok\":true,\"dbs\":[\"movies\"]}";
      "{\"ok\":true,\"sessions\":0,\"running\":0,\"opened\":0,\"rejected\":0,\"completed\":0,\"cancelled\":0,\"refined\":0,\"rebased\":0,\"slices\":0,\"draining\":false,\"duopar\":{\"domains_requested\":1,\"domains\":1,\"round_size\":0,\"commit_rate\":1,\"spec_tasks\":0,\"spec_hits\":0}}";
    ]
    (transcript server [ "{\"op\":\"list_dbs\"}"; "{\"op\":\"stats\"}" ]);
  Server.destroy server

let test_golden_admission_full () =
  let server = make_server ~max_sessions:2 () in
  let open_req =
    "{\"op\":\"open_session\",\"db\":\"movies\",\"nlq\":\"movie names\"}"
  in
  check_transcript "admission control goldens"
    [
      "{\"ok\":true,\"session\":1,\"status\":\"running\"}";
      "{\"ok\":true,\"session\":2,\"status\":\"running\"}";
      "{\"ok\":false,\"error\":\"server full: 2 sessions open\"}";
      "{\"ok\":true,\"session\":1,\"closed\":true}";
      "{\"ok\":true,\"session\":3,\"status\":\"running\"}";
    ]
    (transcript server
       [
         open_req;
         open_req;
         open_req;
         "{\"op\":\"close\",\"session\":1}";
         open_req;
       ]);
  Server.destroy server

let test_golden_over_budget () =
  (* a session asking beyond the server ceiling is clamped, one under it
     keeps its budget: session 1 wants 1M pops (ceiling 2000), session 2
     wants 120 *)
  let server = make_server () in
  let r1 =
    Server.handle_line server
      "{\"op\":\"open_session\",\"db\":\"movies\",\"nlq\":\"movie names and \
       years\",\"max_pops\":1000000}"
  in
  let r2 =
    Server.handle_line server
      "{\"op\":\"open_session\",\"db\":\"movies\",\"nlq\":\"movie names and \
       years\",\"max_pops\":120}"
  in
  Alcotest.(check string) "open 1"
    "{\"ok\":true,\"session\":1,\"status\":\"running\"}" r1;
  Alcotest.(check string) "open 2"
    "{\"ok\":true,\"session\":2,\"status\":\"running\"}" r2;
  while Server.tick server do
    ()
  done;
  let pops_of line =
    match Json.parse line with
    | Ok j -> Option.get (Json.get_int (Option.get (Json.member "pops" j)))
    | Error e -> Alcotest.failf "bad response: %s" e
  in
  let p1 =
    pops_of (Server.handle_line server "{\"op\":\"get_candidates\",\"session\":1}")
  in
  let p2 =
    pops_of (Server.handle_line server "{\"op\":\"get_candidates\",\"session\":2}")
  in
  Alcotest.(check bool) "session 1 clamped to ceiling" true (p1 <= 2_000);
  Alcotest.(check bool) "session 2 kept its budget" true (p2 <= 120);
  Alcotest.(check bool) "session 2 under session 1" true (p2 < p1);
  Server.destroy server

let test_golden_cancel_mid_step () =
  let server = make_server ~slice:10 () in
  let _ =
    Server.handle_line server
      "{\"op\":\"open_session\",\"db\":\"movies\",\"nlq\":\"movie names and years\"}"
  in
  (* a few slices in, the session is mid-run *)
  Alcotest.(check bool) "tick ran" true (Server.tick server);
  Alcotest.(check bool) "tick ran again" true (Server.tick server);
  check_transcript "cancel mid-step goldens"
    [
      "{\"ok\":true,\"session\":1,\"status\":\"cancelled\"}";
      (* results stay readable after cancel; 2 slices * 10 pops *)
      "{\"ok\":true,\"session\":1,\"status\":\"cancelled\",\"candidates\":[],\"total\":0,\"pops\":20,\"exhausted\":false}";
      (* cancel is idempotent *)
      "{\"ok\":true,\"session\":1,\"status\":\"cancelled\"}";
    ]
    (transcript server
       [
         "{\"op\":\"cancel\",\"session\":1}";
         "{\"op\":\"get_candidates\",\"session\":1,\"k\":3}";
         "{\"op\":\"cancel\",\"session\":1}";
       ]);
  (* a cancelled session is never scheduled again *)
  Alcotest.(check bool) "nothing runnable" false (Server.tick server);
  Server.destroy server

let test_golden_shutdown_drain () =
  let server = make_server () in
  let _ =
    Server.handle_line server
      "{\"op\":\"open_session\",\"db\":\"movies\",\"nlq\":\"movie names\",\"max_pops\":60}"
  in
  check_transcript "shutdown goldens"
    [
      "{\"ok\":true,\"draining\":true}";
      "{\"ok\":false,\"error\":\"server is draining\"}";
    ]
    (transcript server
       [
         "{\"op\":\"shutdown\"}";
         "{\"op\":\"open_session\",\"db\":\"movies\",\"nlq\":\"names\"}";
       ]);
  Alcotest.(check bool) "draining" true (Server.draining server);
  Alcotest.(check bool) "not yet drained" false (Server.drained server);
  while Server.tick server do
    ()
  done;
  Alcotest.(check bool) "drained after ticks" true (Server.drained server);
  Server.destroy server

(* --- zero cross-session interference ---------------------------------- *)

(* Eight concurrent sessions, round-robin time-sliced, then each compared
   against a solo run with the identical config: the candidate lists must
   be bit-identical.  This is the server's core correctness claim. *)
let test_concurrent_sessions_match_solo () =
  let nlqs =
    [
      "movie names";
      "movie names and years";
      "average movie year";
      "number of movies";
    ]
  in
  let specs = List.init 8 (fun i -> List.nth nlqs (i mod List.length nlqs)) in
  let server = make_server ~slice:17 () in
  List.iteri
    (fun i nlq ->
      let line =
        Printf.sprintf
          "{\"op\":\"open_session\",\"db\":\"movies\",\"nlq\":\"%s\",\"max_pops\":600}"
          nlq
      in
      Alcotest.(check string)
        (Printf.sprintf "open %d" (i + 1))
        (Printf.sprintf "{\"ok\":true,\"session\":%d,\"status\":\"running\"}"
           (i + 1))
        (Server.handle_line server line))
    specs;
  while Server.tick server do
    ()
  done;
  let db = Fixtures.movie_db () in
  let solo_session = Duoquest.create_session db in
  let config =
    { Enumerate.default_config with
      Enumerate.max_pops = 600;
      max_candidates = 8;
      time_budget_s = 20.0 }
  in
  List.iteri
    (fun i nlq ->
      let resp =
        Server.handle_line server
          (Printf.sprintf "{\"op\":\"get_candidates\",\"session\":%d}" (i + 1))
      in
      let j = Result.get_ok (Json.parse resp) in
      Alcotest.(check (option string))
        (Printf.sprintf "session %d finished" (i + 1))
        (Some "finished")
        (Option.bind (Json.member "status" j) Json.get_str);
      let served =
        List.map
          (fun c ->
            Option.get (Json.get_str (Option.get (Json.member "sql" c))))
          (Option.get (Json.get_list (Option.get (Json.member "candidates" j))))
      in
      let solo = Duoquest.synthesize ~config solo_session ~nlq () in
      let expected =
        List.map
          (fun c -> Duosql.Pretty.query c.Enumerate.cand_query)
          solo.Enumerate.out_candidates
      in
      Alcotest.(check (list string))
        (Printf.sprintf "session %d = solo run (%s)" (i + 1) nlq)
        expected served)
    specs;
  Server.destroy server

(* --- refine_tsq: the interaction loop --------------------------------- *)

let test_refine_restarts () =
  let server = make_server () in
  let _ =
    Server.handle_line server
      "{\"op\":\"open_session\",\"db\":\"movies\",\"nlq\":\"movie names\",\"max_pops\":400}"
  in
  while Server.tick server do
    ()
  done;
  let first =
    Server.handle_line server "{\"op\":\"get_candidates\",\"session\":1}"
  in
  (* no prior TSQ on the session, so this refine is a from-root restart:
     [rebased] is false *)
  Alcotest.(check string) "refine response"
    "{\"ok\":true,\"session\":1,\"status\":\"running\",\"refinements\":1,\"rebased\":false}"
    (Server.handle_line server
       "{\"op\":\"refine_tsq\",\"session\":1,\"tsq\":{\"types\":[\"text\"],\"tuples\":[[\"Forrest Gump\"]]}}");
  while Server.tick server do
    ()
  done;
  let refined =
    Server.handle_line server "{\"op\":\"get_candidates\",\"session\":1}"
  in
  let sqls line =
    let j = Result.get_ok (Json.parse line) in
    List.map
      (fun c -> Option.get (Json.get_str (Option.get (Json.member "sql" c))))
      (Option.get (Json.get_list (Option.get (Json.member "candidates" j))))
  in
  Alcotest.(check bool) "refined run found candidates" true (sqls refined <> []);
  (* the sketch narrowed the space: refined results also come from a solo
     dual-specification run *)
  let db = Fixtures.movie_db () in
  let config =
    { Enumerate.default_config with
      Enumerate.max_pops = 400;
      max_candidates = 8;
      time_budget_s = 20.0 }
  in
  let tsq =
    Duocore.Tsq.make ~types:[ Duodb.Datatype.Text ]
      ~tuples:[ [ Duocore.Tsq.Exact (Duodb.Value.Text "Forrest Gump") ] ]
      ()
  in
  let solo =
    Duoquest.synthesize ~config ~tsq (Duoquest.create_session db)
      ~nlq:"movie names" ()
  in
  Alcotest.(check (list string))
    "refined session = solo dual-spec run"
    (List.map
       (fun c -> Duosql.Pretty.query c.Enumerate.cand_query)
       solo.Enumerate.out_candidates)
    (sqls refined);
  ignore first;
  Server.destroy server

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse cases" `Quick test_json_parse_cases;
    Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
    Alcotest.test_case "tsq wire cells" `Quick test_tsq_wire_cells;
    Alcotest.test_case "golden: open + errors" `Quick test_golden_open_and_errors;
    Alcotest.test_case "golden: list_dbs + stats" `Quick
      test_golden_list_and_stats;
    Alcotest.test_case "golden: admission full" `Quick test_golden_admission_full;
    Alcotest.test_case "over-budget sessions clamped" `Quick
      test_golden_over_budget;
    Alcotest.test_case "golden: cancel mid-step" `Quick
      test_golden_cancel_mid_step;
    Alcotest.test_case "golden: shutdown drain" `Quick test_golden_shutdown_drain;
    Alcotest.test_case "8 concurrent sessions = solo runs" `Quick
      test_concurrent_sessions_match_solo;
    Alcotest.test_case "refine_tsq restarts enumeration" `Quick
      test_refine_restarts;
  ]
