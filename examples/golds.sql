-- Gold queries over the movies schema (Section 2.1 running example),
-- linted by `duolint` via the @lint alias: none may carry an error
-- (warnings are advice and do not fail the build).

-- Figure 2: movies released before 1995
SELECT movies.name FROM movies WHERE movies.year < 1995

-- CQ1-style: who starred in Titanic
SELECT actor.name FROM starring JOIN actor ON starring.aid = actor.aid JOIN movies ON starring.mid = movies.mid WHERE movies.name = 'Titanic'

-- top-grossing recent movies, best first
SELECT movies.name, movies.revenue FROM movies WHERE movies.year >= 1995 ORDER BY movies.revenue DESC LIMIT 3

-- movies per year
SELECT movies.year, COUNT(*) FROM movies GROUP BY movies.year

-- birth years of actors born outside Los Angeles
SELECT actor.name, actor.birth_yr FROM actor WHERE actor.birthplace <> 'Los Angeles'

-- average revenue of the movies each actor starred in
SELECT actor.name, AVG(movies.revenue) FROM starring JOIN actor ON starring.aid = actor.aid JOIN movies ON starring.mid = movies.mid GROUP BY actor.name

-- years with more than one release, counted
SELECT movies.year, COUNT(*) FROM movies GROUP BY movies.year HAVING COUNT(*) > 1

-- range predicate and LIKE together
SELECT movies.name FROM movies WHERE movies.revenue BETWEEN 300 AND 900 AND movies.name LIKE '%e%'
