(* loadgen: concurrent-session benchmark for duoserve.

   Boots the server in-process on a Unix socket, then replays generated
   Spider-like tasks as traffic from several concurrent client domains:
   each client opens a session (half NLQ-only, half dual-specification),
   polls it to completion, and closes it.  The admission bound is set
   below the client count, so rejection and retry are part of the
   workload.

   Reports session-completion latency percentiles (p50/p95/p99),
   throughput, and rejected opens; every distinct task's served
   candidates are then compared against a solo in-process run with the
   identical budget — any mismatch would mean cross-session
   interference, and fails the program.

     ./loadgen.exe [--quick] [--clients N] [--repeat R] [--json PATH] *)

module Server = Duoserve.Server
module Client = Duoserve.Client
module Protocol = Duoserve.Protocol
module Json = Duoserve.Json
module Enumerate = Duocore.Enumerate
module Duoquest = Duocore.Duoquest
module Spider_gen = Duobench.Spider_gen

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("loadgen: " ^ m); exit 1) fmt

type result = {
  r_task : int;  (** index into the replayed task array *)
  r_latency_s : float;
  r_sqls : string list;
}

let session_budget =
  { Enumerate.default_config with
    Enumerate.max_pops = 400;
    max_candidates = 5;
    time_budget_s = 20.0 }

let tsq_for db (task : Spider_gen.task) k =
  if k mod 2 = 1 then
    Duobench.Tsq_synth.synthesize
      (Duobench.Rng.create (100 + k))
      db task.Spider_gen.sp_gold ~detail:Duobench.Tsq_synth.Full
  else None

let get_str j field = Option.bind (Json.member field j) Json.get_str
let get_int j field = Option.bind (Json.member field j) Json.get_int

let sqls_of j =
  match Option.bind (Json.member "candidates" j) Json.get_list with
  | None -> die "get_candidates response without candidates"
  | Some cs ->
      List.map
        (fun c ->
          match Option.bind (Json.member "sql" c) Json.get_str with
          | Some s -> s
          | None -> die "candidate without sql")
        cs

let run_client ~path ~dbs ~tasks ~next ~rejected () =
  let conn = Client.connect_unix path in
  let results = ref [] in
  let total = Array.length tasks in
  let rec drive () =
    let k = Atomic.fetch_and_add next 1 in
    if k < total then begin
      let task = tasks.(k) in
      let db = List.assoc task.Spider_gen.sp_db dbs in
      let open_req =
        Protocol.Open_session
          {
            Protocol.op_db = task.Spider_gen.sp_db;
            op_nlq = task.Spider_gen.sp_nlq;
            op_tsq = tsq_for db task k;
            op_literals = Some task.Spider_gen.sp_literals;
            op_max_pops = None;
            op_max_candidates = None;
            op_time_budget_s = None;
          }
      in
      let t0 = Unix.gettimeofday () in
      (* admission: retry until a slot frees up *)
      let rec admit tries =
        if tries > 100_000 then die "task %d never admitted" k;
        match Client.request conn open_req with
        | Ok j -> j
        | Error e
          when String.length e >= 11 && String.sub e 0 11 = "server full" ->
            Atomic.incr rejected;
            Unix.sleepf 0.004;
            admit (tries + 1)
        | Error e -> die "open failed: %s" e
      in
      let opened = admit 0 in
      let sid =
        match get_int opened "session" with
        | Some i -> i
        | None -> die "open response without session id"
      in
      let rec poll tries =
        if tries > 50_000 then die "session %d stuck" sid;
        let r =
          match Client.request conn (Protocol.Get_candidates (sid, None)) with
          | Ok j -> j
          | Error e -> die "get_candidates failed: %s" e
        in
        match get_str r "status" with
        | Some "running" ->
            Unix.sleepf 0.002;
            poll (tries + 1)
        | Some _ -> r
        | None -> die "get_candidates without status"
      in
      let final = poll 0 in
      let latency = Unix.gettimeofday () -. t0 in
      (match Client.request conn (Protocol.Close sid) with
      | Ok _ -> ()
      | Error e -> die "close failed: %s" e);
      results :=
        { r_task = k; r_latency_s = latency; r_sqls = sqls_of final }
        :: !results;
      drive ()
    end
  in
  drive ();
  Client.close conn;
  !results

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

(* Solo replay of one task with the identical budget; the server's
   per-session results must match this exactly. *)
let solo_run ~dbs ~tasks k =
  let task = tasks.(k) in
  let db = List.assoc task.Spider_gen.sp_db dbs in
  let session = Duoquest.create_session db in
  let outcome =
    Duoquest.synthesize ~config:session_budget
      ?tsq:(tsq_for db task k)
      ~literals:task.Spider_gen.sp_literals session
      ~nlq:task.Spider_gen.sp_nlq ()
  in
  List.map
    (fun c -> Duosql.Pretty.query c.Enumerate.cand_query)
    outcome.Enumerate.out_candidates

(* --- warm-vs-cold refinement sweep ---------------------------------- *)

(* For each distinct task with a synthesizable sketch: run a session to
   completion under a loosened ancestor of the sketch, then tighten it in
   place — the server must serve that over the warm [Enumerate.rebase]
   path — and measure refine→finish latency.  The cold baseline refines a
   sketchless session to the same target, which takes the from-root
   fallback.  Warm must keep the cold run's candidates (as a prefix; the
   pop budget is per refinement, so a pop-bound cold run may legally stop
   earlier). *)

type refine_report = {
  rf_tasks : int;
  rf_warm_ms : float array;  (** sorted *)
  rf_cold_ms : float array;  (** sorted *)
  rf_mismatches : int;
}

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

let refine_sweep ~path ~dbs ~tasks ~max_tasks () =
  let module Tsq = Duocore.Tsq in
  let conn = Client.connect_unix path in
  let open_session ?tsq (task : Spider_gen.task) =
    let req =
      Protocol.Open_session
        {
          Protocol.op_db = task.Spider_gen.sp_db;
          op_nlq = task.Spider_gen.sp_nlq;
          op_tsq = tsq;
          op_literals = Some task.Spider_gen.sp_literals;
          op_max_pops = None;
          op_max_candidates = None;
          op_time_budget_s = None;
        }
    in
    let rec admit tries =
      if tries > 100_000 then die "refine sweep: never admitted";
      match Client.request conn req with
      | Ok j -> j
      | Error e when String.length e >= 11 && String.sub e 0 11 = "server full"
        ->
          Unix.sleepf 0.004;
          admit (tries + 1)
      | Error e -> die "refine sweep: open failed: %s" e
    in
    match get_int (admit 0) "session" with
    | Some sid -> sid
    | None -> die "refine sweep: open response without session id"
  in
  let rec poll sid tries =
    if tries > 50_000 then die "refine sweep: session %d stuck" sid;
    match Client.request conn (Protocol.Get_candidates (sid, None)) with
    | Error e -> die "refine sweep: poll failed: %s" e
    | Ok r -> (
        match get_str r "status" with
        | Some "running" ->
            Unix.sleepf 0.002;
            poll sid (tries + 1)
        | Some _ -> r
        | None -> die "refine sweep: poll without status")
  in
  (* refine→finish latency, whether the warm path served it, final SQLs *)
  let refine_to sid tsq =
    let t0 = Unix.gettimeofday () in
    match Client.request conn (Protocol.Refine_tsq (sid, tsq)) with
    | Error e -> die "refine sweep: refine failed: %s" e
    | Ok r ->
        let rebased = Option.bind (Json.member "rebased" r) Json.get_bool in
        let final = poll sid 0 in
        (Unix.gettimeofday () -. t0, rebased = Some true, sqls_of final)
  in
  let close sid = ignore (Client.request conn (Protocol.Close sid)) in
  let warm = ref [] and cold = ref [] in
  let n = ref 0 and mismatches = ref 0 in
  Array.iteri
    (fun k (task : Spider_gen.task) ->
      if !n < max_tasks then
        let db = List.assoc task.Spider_gen.sp_db dbs in
        match
          Duobench.Tsq_synth.synthesize
            (Duobench.Rng.create (200 + k))
            db task.Spider_gen.sp_gold ~detail:Duobench.Tsq_synth.Full
        with
        | None -> ()
        | Some t0 ->
            let tight = { t0 with Tsq.min_support = None } in
            let loose =
              { tight with
                Tsq.tuples =
                  (match tight.Tsq.tuples with [] -> [] | t :: _ -> [ t ]);
                sorted = false;
                negatives = [] }
            in
            if Tsq.refines ~old:loose ~new_:tight = Tsq.Tightening then begin
              incr n;
              let sid = open_session ~tsq:loose task in
              ignore (poll sid 0);
              let w_lat, w_rebased, w_sqls = refine_to sid tight in
              close sid;
              if not w_rebased then
                die "refine sweep: tightening on task %d not served warm" k;
              let sid = open_session task in
              ignore (poll sid 0);
              let c_lat, c_rebased, c_sqls = refine_to sid tight in
              close sid;
              if c_rebased then
                die "refine sweep: sketchless refine on task %d took the \
                     rebase path" k;
              warm := (w_lat *. 1000.0) :: !warm;
              cold := (c_lat *. 1000.0) :: !cold;
              if not (is_prefix c_sqls w_sqls) then incr mismatches
            end)
    tasks;
  Client.close conn;
  let sorted l =
    let a = Array.of_list l in
    Array.sort compare a;
    a
  in
  {
    rf_tasks = !n;
    rf_warm_ms = sorted !warm;
    rf_cold_ms = sorted !cold;
    rf_mismatches = !mismatches;
  }

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let () =
  let quick = ref false in
  let clients = ref 10 in
  let repeat = ref 2 in
  let json_path = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest -> quick := true; parse rest
    | "--clients" :: n :: rest -> clients := int_of_string n; parse rest
    | "--repeat" :: n :: rest -> repeat := int_of_string n; parse rest
    | "--json" :: p :: rest -> json_path := Some p; parse rest
    | arg :: _ ->
        die "unknown argument %s (expected --quick, --clients N, --repeat R, --json PATH)" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  let n_dbs, per_db = if !quick then (3, 3) else (6, 4) in
  let split = Spider_gen.mini ~seed:5 ~n_dbs ~per_db () in
  let dbs = split.Spider_gen.databases in
  let base_tasks = Array.of_list split.Spider_gen.tasks in
  let tasks =
    Array.init
      (Array.length base_tasks * !repeat)
      (fun i -> base_tasks.(i mod Array.length base_tasks))
  in
  let max_sessions = max 2 (!clients - 2) in
  let server_config =
    { Server.max_sessions; slice_pops = 64; session_config = session_budget }
  in
  let path = Printf.sprintf "/tmp/duoserve-load-%d.sock" (Unix.getpid ()) in
  let server = Server.create server_config dbs in
  let listen =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  in
  let server_domain = Domain.spawn (fun () -> Server.serve server ~listen) in
  let next = Atomic.make 0 in
  let rejected = Atomic.make 0 in
  Printf.printf
    "loadgen: %d sessions over %d clients (max %d concurrent), %d databases\n%!"
    (Array.length tasks) !clients max_sessions (List.length dbs);
  let t_start = Unix.gettimeofday () in
  let client_domains =
    List.init !clients (fun _ ->
        Domain.spawn (run_client ~path ~dbs ~tasks ~next ~rejected))
  in
  let results = List.concat_map Domain.join client_domains in
  let wall = Unix.gettimeofday () -. t_start in
  (* warm-vs-cold refinement sweep on the still-running server *)
  let refine = refine_sweep ~path ~dbs ~tasks:base_tasks ~max_tasks:8 () in
  (* drain the server *)
  let control = Client.connect_unix path in
  let stats = Client.request_exn control Protocol.Stats in
  ignore (Client.request_exn control Protocol.Shutdown);
  Client.close control;
  Domain.join server_domain;
  Server.destroy server;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  (* interference check: every distinct task, served = solo *)
  let mismatches = ref 0 in
  let checked = min (Array.length base_tasks) (Array.length tasks) in
  let by_task = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace by_task r.r_task r.r_sqls) results;
  for k = 0 to checked - 1 do
    match Hashtbl.find_opt by_task k with
    | None -> ()
    | Some served ->
        if served <> solo_run ~dbs ~tasks k then begin
          incr mismatches;
          Printf.printf "loadgen: INTERFERENCE on task %d (%s)\n%!" k
            tasks.(k).Spider_gen.sp_nlq
        end
  done;
  let lats =
    results |> List.map (fun r -> r.r_latency_s *. 1000.0) |> Array.of_list
  in
  Array.sort compare lats;
  let p50 = percentile lats 0.50
  and p95 = percentile lats 0.95
  and p99 = percentile lats 0.99 in
  let mean =
    if Array.length lats = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 lats /. float_of_int (Array.length lats)
  in
  let throughput =
    if wall > 0.0 then float_of_int (List.length results) /. wall else 0.0
  in
  let n_rejected = Atomic.get rejected in
  let refine_warm_p50 = percentile refine.rf_warm_ms 0.50 in
  let refine_cold_p50 = percentile refine.rf_cold_ms 0.50 in
  Printf.printf
    "loadgen: %d sessions in %.2fs (%.2f/s); latency ms p50=%.1f p95=%.1f \
     p99=%.1f; %d rejected opens; %d interference mismatches\n%!"
    (List.length results) wall throughput p50 p95 p99 n_rejected !mismatches;
  Printf.printf
    "loadgen: refine sweep over %d tasks: warm p50=%.1fms cold p50=%.1fms \
     (%.1fx); %d candidate mismatches\n%!"
    refine.rf_tasks refine_warm_p50 refine_cold_p50
    (if refine_warm_p50 > 0.0 then refine_cold_p50 /. refine_warm_p50 else 0.0)
    refine.rf_mismatches;
  (match !json_path with
  | None -> ()
  | Some out ->
      let oc = open_out out in
      let p fmt = Printf.fprintf oc fmt in
      p "{\n";
      p "  \"scale\": \"%s\",\n" (if !quick then "quick" else "full");
      p "  \"databases\": %d,\n" (List.length dbs);
      p "  \"sessions\": %d,\n" (List.length results);
      p "  \"clients\": %d,\n" !clients;
      p "  \"max_concurrent_sessions\": %d,\n" max_sessions;
      p "  \"slice_pops\": %d,\n" server_config.Server.slice_pops;
      p "  \"session_budget\": {\"max_pops\": %d, \"max_candidates\": %d},\n"
        session_budget.Enumerate.max_pops
        session_budget.Enumerate.max_candidates;
      p "  \"latency_ms\": {\"p50\": %.2f, \"p95\": %.2f, \"p99\": %.2f, \
         \"mean\": %.2f, \"max\": %.2f},\n"
        p50 p95 p99 mean
        (if Array.length lats = 0 then 0.0 else lats.(Array.length lats - 1));
      p "  \"throughput_sessions_per_s\": %.3f,\n" throughput;
      p "  \"rejected_opens\": %d,\n" n_rejected;
      p "  \"server\": {\"opened\": %s, \"completed\": %s, \"slices\": %s},\n"
        (match get_int stats "opened" with Some i -> string_of_int i | None -> "null")
        (match get_int stats "completed" with Some i -> string_of_int i | None -> "null")
        (match get_int stats "slices" with Some i -> string_of_int i | None -> "null")
      ;
      (* Duopar view of the run, straight from the server's stats reply:
         requested vs effective domains and the cross-session
         speculation counters (zero on a host where the domain count
         clamps to 1 — commit_rate reports 1.0 then, not null). *)
      let duopar = Option.bind (Json.member "duopar" stats) (fun d -> Some d) in
      let dp_int field =
        match Option.bind duopar (fun d -> Option.bind (Json.member field d) Json.get_int) with
        | Some i -> string_of_int i
        | None -> "null"
      in
      let dp_num field =
        match Option.bind duopar (fun d -> Option.bind (Json.member field d) Json.get_num) with
        | Some f -> Printf.sprintf "%.3f" f
        | None -> "null"
      in
      p "  \"duopar\": {\"domains_requested\": %s, \"domains\": %s, \
         \"round_size\": %s, \"commit_rate\": %s, \"spec_tasks\": %s, \
         \"spec_hits\": %s},\n"
        (dp_int "domains_requested") (dp_int "domains") (dp_int "round_size")
        (dp_num "commit_rate") (dp_int "spec_tasks") (dp_int "spec_hits");
      p "  \"interference\": {\"tasks_checked\": %d, \"mismatches\": %d},\n"
        checked !mismatches;
      p "  \"refine\": {\"tasks\": %d, \"warm_ms\": {\"p50\": %.2f, \
         \"p95\": %.2f}, \"cold_ms\": {\"p50\": %.2f, \"p95\": %.2f}, \
         \"warm_speedup_p50\": %.2f, \"candidate_mismatches\": %d},\n"
        refine.rf_tasks refine_warm_p50
        (percentile refine.rf_warm_ms 0.95)
        refine_cold_p50
        (percentile refine.rf_cold_ms 0.95)
        (if refine_warm_p50 > 0.0 then refine_cold_p50 /. refine_warm_p50
         else 0.0)
        refine.rf_mismatches;
      p "  \"note\": \"%s\"\n"
        (json_escape
           "latency is per-session completion time under concurrent \
            round-robin scheduling on the bench host");
      p "}\n";
      close_out oc;
      Printf.printf "loadgen: wrote %s\n%!" out);
  if !mismatches > 0 || refine.rf_mismatches > 0 then exit 1
