(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (part 1), then times the core operations behind each
   experiment with Bechamel microbenchmarks (part 2).

   Scale control: DUOQUEST_BENCH_SCALE=quick runs small generated splits for
   smoke testing; the default regenerates the full paper-sized splits.

   Flags: --micro-only skips part 1; --json PATH additionally writes the
   microbenchmark estimates (and planner-on/off speedups) as JSON. *)

open Bechamel

let scale () =
  match Sys.getenv_opt "DUOQUEST_BENCH_SCALE" with
  | Some ("quick" | "QUICK") -> `Quick
  | Some _ | None -> `Full

(* --- part 1: paper tables and figures --- *)

let run_experiments () =
  (* DUOQUEST_DOMAINS > 1 shards workload generation and the simulation
     runs over one shared pool (Duopar v2); artifacts are identical to
     the sequential run. *)
  let domains =
    Duocore.Enumerate.effective_domains
      { Duocore.Enumerate.default_config with
        Duocore.Enumerate.domains = Duocore.Enumerate.domains_from_env () }
  in
  let pool = if domains > 1 then Some (Duopar.Pool.create ~domains) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter Duopar.Pool.shutdown pool)
    (fun () ->
      let t = Duobench.Experiments.create ~scale:(scale ()) ?pool () in
      let ppf = Format.std_formatter in
      Format.fprintf ppf
        "Duoquest reproduction: regenerating all paper artifacts (scale=%s, domains=%d)@."
        (match scale () with `Quick -> "quick" | `Full -> "full")
        domains;
      Duobench.Experiments.run_all t ppf;
      Format.pp_print_flush ppf ())

(* --- part 2: Bechamel microbenchmarks, one per table/figure --- *)

let movie_session = lazy (Duocore.Duoquest.create_session (Duobench.Movies.database ()))
let mas_db = lazy (Duobench.Mas.database ())
let mas_session = lazy (Duocore.Duoquest.create_session (Lazy.force mas_db))

let micro_config =
  { Duocore.Enumerate.default_config with
    Duocore.Enumerate.max_pops = 3_000;
    max_candidates = 10;
    time_budget_s = 0.5 }

(* The cascade profile digs deeper than the microbenchmarks: the later
   stages (Duosem's cardinality bound, the probe stages) only see real
   traffic a few thousand pops in, and the run must be pop-bounded, not
   time-bounded, so the promoted JSON counters are machine-independent. *)
let profile_config =
  { micro_config with
    Duocore.Enumerate.max_pops = 12_000;
    max_candidates = 40;
    time_budget_s = 30.0 }

let fig2_tsq =
  Duocore.Tsq.make ~types:[ Duodb.Datatype.Text ]
    ~tuples:[ [ Duocore.Tsq.Exact (Duodb.Value.Text "Forrest Gump") ] ]
    ()

let synth_movie mode tsq () =
  ignore
    (Duocore.Duoquest.synthesize ~config:micro_config ~mode ?tsq
       ~literals:[ Duodb.Value.Int 1995 ]
       (Lazy.force movie_session)
       ~nlq:"Find all movies from before 1995" ())

let mas_task_a1 = List.hd Duobench.Mas.nli_study_tasks

(* Planner-on vs planner-off executor pairs on MAS gold queries: A1 is a
   two-table join, B1 a three-table join and B4 a four-table join with
   grouping — each with a selective equality WHERE predicate, the shape of
   the GPQE verification hot path. *)
let executor_bench_tests () =
  let db = Lazy.force mas_db in
  let all_tasks = Duobench.Mas.nli_study_tasks @ Duobench.Mas.pbe_study_tasks in
  let pair id =
    let task = List.find (fun t -> t.Duobench.Mas.task_id = id) all_tasks in
    let q = Duobench.Mas.gold task in
    List.map
      (fun (tag, planner) ->
        Test.make ~name:(Printf.sprintf "executor/%s/planner-%s" id tag)
          (Staged.stage (fun () ->
               ignore (Duoengine.Executor.run_exn ~planner db q))))
      [ ("on", true); ("off", false) ]
  in
  List.concat_map pair [ "A1"; "B1"; "B4" ]

(* --- Duodb columnar kernels: scan/probe microbenchmarks and a
   batched-vs-unbatched probe comparison, all on the largest MAS table --- *)

(* The largest MAS table with a numeric column carrying data, and —
   independently, since the biggest tables are all-numeric link tables —
   the largest table with a text column carrying data. *)
let duodb_targets =
  lazy
    (let db = Lazy.force mas_db in
     let schema = Duodb.Database.schema db in
     let rows_of (t : Duodb.Schema.table) =
       Duodb.Table.row_count (Duodb.Database.table_exn db t.Duodb.Schema.tbl_name)
     in
     let by_rows =
       List.sort (fun a b -> compare (rows_of b) (rows_of a)) schema.Duodb.Schema.tables
     in
     let pick (tdef : Duodb.Schema.table) ty =
       let tbl = Duodb.Database.table_exn db tdef.Duodb.Schema.tbl_name in
       List.find_opt
         (fun (c : Duodb.Schema.column) ->
           Duodb.Datatype.equal c.Duodb.Schema.col_type ty
           && Option.is_some (Duodb.Table.column_range tbl c.Duodb.Schema.col_name))
         tdef.Duodb.Schema.tbl_columns
     in
     let target ty =
       List.find_map
         (fun tdef ->
           Option.map
             (fun c ->
               (tdef, Duodb.Database.table_exn db tdef.Duodb.Schema.tbl_name, c))
             (pick tdef ty))
         by_rows
     in
     (Option.get (target Duodb.Datatype.Number), target Duodb.Datatype.Text))

let distinct_non_null tbl (c : Duodb.Schema.column) =
  List.sort_uniq Duodb.Value.compare
    (List.filter
       (fun v -> not (Duodb.Value.is_null v))
       (Array.to_list (Duodb.Table.column_array tbl c.Duodb.Schema.col_name)))

(* A selective range: bottom decile of the column's distinct values, the
   shape of a verification probe's equality/range predicate (and one a
   zone map can actually skip blocks for). *)
let low_decile vals =
  let arr = Array.of_list vals in
  arr.(Array.length arr / 10)

(* Vectorized kernels against a scalar row-at-a-time scan of the same
   predicate, so the JSON records what the columnar layout buys.  The
   scalar side collects matching row indices exactly like the
   pre-columnar executor's filter did. *)
let duodb_bench_tests () =
  let (_, tbl, nc), txt = Lazy.force duodb_targets in
  let open Duosql.Ast in
  let ncr = col nc.Duodb.Schema.col_table nc.Duodb.Schema.col_name in
  let j = Duodb.Table.column_index tbl nc.Duodb.Schema.col_name in
  let lo =
    match Duodb.Table.column_range tbl nc.Duodb.Schema.col_name with
    | Some (lo, _) -> lo
    | None -> assert false
  in
  let hi = low_decile (distinct_non_null tbl nc) in
  let range_cond = { c_preds = [ between ncr lo hi ]; c_conn = And } in
  let scalar_range () =
    let acc = ref [] in
    let rows = Duodb.Table.rows tbl in
    Array.iteri
      (fun i row ->
        let v = row.(j) in
        if
          (not (Duodb.Value.is_null v))
          && Duodb.Value.compare lo v <= 0
          && Duodb.Value.compare v hi <= 0
        then acc := i :: !acc)
      rows;
    !acc
  in
  [
    Test.make ~name:"duodb/scan-range/kernel"
      (Staged.stage (fun () -> ignore (Duoengine.Kernel.select tbl range_cond)));
    Test.make ~name:"duodb/scan-range/scalar"
      (Staged.stage (fun () -> ignore (scalar_range ())));
  ]
  @
  match txt with
  | None -> []
  | Some (_, ttbl, tc) ->
      let k = Duodb.Table.column_index ttbl tc.Duodb.Schema.col_name in
      let probe_vals =
        List.filteri
          (fun i (_ : Duodb.Value.t) -> i < 8)
          (distinct_non_null ttbl tc)
      in
      let tcr = col tc.Duodb.Schema.col_table tc.Duodb.Schema.col_name in
      let eq_cond =
        { c_preds = [ pred tcr Eq (List.hd probe_vals) ]; c_conn = And }
      in
      let kj = Duodb.Table.column_index ttbl tc.Duodb.Schema.col_name in
      let scalar_eq () =
        let v0 = List.hd probe_vals in
        let acc = ref [] in
        Array.iteri
          (fun i row -> if Duodb.Value.equal row.(kj) v0 then acc := i :: !acc)
          (Duodb.Table.rows ttbl);
        !acc
      in
      [
        Test.make ~name:"duodb/scan-txt-eq/kernel"
          (Staged.stage (fun () -> ignore (Duoengine.Kernel.select ttbl eq_cond)));
        Test.make ~name:"duodb/scan-txt-eq/scalar"
          (Staged.stage (fun () -> ignore (scalar_eq ())));
        Test.make ~name:"duodb/probe-exists/kernel"
          (Staged.stage (fun () ->
               ignore (Duoengine.Kernel.probe_exists ttbl ~col:k probe_vals)));
      ]

(* Batched multi-candidate probe execution: twelve single-table candidates
   over the largest MAS table, run once through [Executor.run_batch] (one
   shared base scan) and once as twelve independent [Executor.run] calls —
   both without a relation cache, so every repetition pays its scans, the
   shape of one cold verify_batch round. *)
let duodb_batch_profile () =
  let (tdef, tbl, nc), _ = Lazy.force duodb_targets in
  let db = Lazy.force mas_db in
  let open Duosql.Ast in
  let ncr = col nc.Duodb.Schema.col_table nc.Duodb.Schema.col_name in
  let vals = Array.of_list (distinct_non_null tbl nc) in
  let candidates = 12 in
  let qs =
    Array.init candidates (fun k ->
        let v = vals.(k * (Array.length vals - 1) / (candidates - 1)) in
        let rhs =
          if k mod 3 = 0 then Cmp (Ge, v)
          else if k mod 3 = 1 then Cmp (Le, v)
          else Cmp (Eq, v)
        in
        {
          (simple [ proj_col ncr ] (from_table tdef.Duodb.Schema.tbl_name)) with
          q_where =
            Some
              {
                c_preds = [ { pr_agg = None; pr_col = Some ncr; pr_rhs = rhs } ];
                c_conn = And;
              };
        })
  in
  let reps = match scale () with `Quick -> 40 | `Full -> 200 in
  let time f =
    let t0 = Duocore.Clock.now () in
    for _ = 1 to reps do
      f ()
    done;
    Duocore.Clock.now () -. t0
  in
  let batched_s = time (fun () -> ignore (Duoengine.Executor.run_batch db qs)) in
  let unbatched_s =
    time (fun () -> Array.iter (fun q -> ignore (Duoengine.Executor.run db q)) qs)
  in
  (tdef.Duodb.Schema.tbl_name, Duodb.Table.row_count tbl, candidates, reps,
   batched_s, unbatched_s)

let bench_tests () =
  [
    (* table1: capability matrix rendering *)
    Test.make ~name:"table1/capability-matrix"
      (Staged.stage (fun () -> ignore (Duocore.Capability.to_string ())));
    (* table4: semantic rule checking over the catalogue *)
    Test.make ~name:"table4/semantic-rules"
      (Staged.stage (fun () ->
           let schema = Duobench.Movies.schema in
           List.iter
             (fun (_, example, _) ->
               match Duosql.Parser.query ~schema example with
               | Ok q -> ignore (Duocore.Semantics.check_query schema q)
               | Error _ -> ())
             Duocore.Semantics.catalogue));
    (* table5: dataset construction *)
    Test.make ~name:"table5/mas-database-build"
      (Staged.stage (fun () -> ignore (Duobench.Mas.database ())));
    (* fig5/fig6: one Duoquest study synthesis on MAS task A1 *)
    Test.make ~name:"fig5-6/duoquest-on-mas-A1"
      (Staged.stage (fun () ->
           ignore
             (Duocore.Duoquest.synthesize ~config:micro_config
                ~literals:mas_task_a1.Duobench.Mas.task_literals
                (Lazy.force mas_session)
                ~nlq:mas_task_a1.Duobench.Mas.task_nlq ())));
    (* fig7-9: one SQuID-style discovery round *)
    Test.make ~name:"fig7-9/pbe-discovery"
      (Staged.stage (fun () ->
           let db = Lazy.force mas_db in
           let gold = Duobench.Mas.gold (List.hd Duobench.Mas.pbe_study_tasks) in
           let rng = Duobench.Rng.create 5 in
           match Duobench.Tsq_synth.user_tuples rng db gold ~n:2 with
           | Some tuples -> ignore (Duopbe.Squid.discover db tuples)
           | None -> ()));
    (* fig10/fig11: dual-specification synthesis (the simulation's unit) *)
    Test.make ~name:"fig10-11/duoquest-dual-spec"
      (Staged.stage (synth_movie `Duoquest (Some fig2_tsq)));
    (* fig12: the two ablations' unit operations *)
    Test.make ~name:"fig12/nopq-chaining"
      (Staged.stage (synth_movie `No_pq (Some fig2_tsq)));
    Test.make ~name:"fig12/noguide-bfs"
      (Staged.stage (synth_movie `No_guide (Some fig2_tsq)));
    (* table6: TSQ synthesis itself *)
    Test.make ~name:"table6/tsq-synthesis"
      (Staged.stage (fun () ->
           let db = Lazy.force mas_db in
           let rng = Duobench.Rng.create 17 in
           ignore
             (Duobench.Tsq_synth.synthesize rng db
                (Duobench.Mas.gold mas_task_a1)
                ~detail:Duobench.Tsq_synth.Full)));
    (* table7/table8: gold task execution on MAS *)
    Test.make ~name:"table7-8/gold-task-execution"
      (Staged.stage (fun () ->
           let db = Lazy.force mas_db in
           List.iter
             (fun task ->
               ignore (Duoengine.Executor.run db (Duobench.Mas.gold task)))
             (Duobench.Mas.nli_study_tasks @ Duobench.Mas.pbe_study_tasks)));
  ]
  @ executor_bench_tests ()
  @ duodb_bench_tests ()

let run_microbench () =
  print_newline ();
  print_endline "=== Bechamel microbenchmarks (one per paper artifact) ===";
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let tests = bench_tests () in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              estimates := (name, est) :: !estimates;
              Printf.printf "%-36s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-36s (no estimate)\n%!" name)
        ols)
    tests;
  List.rev !estimates

(* Pair every "X/planner-on" estimate with its "X/planner-off" twin. *)
let speedups estimates =
  List.filter_map
    (fun (name, on_ns) ->
      match Filename.chop_suffix_opt ~suffix:"/planner-on" name with
      | None -> None
      | Some base -> (
          match List.assoc_opt (base ^ "/planner-off") estimates with
          | Some off_ns when on_ns > 0. -> Some (base, on_ns, off_ns)
          | _ -> None))
    estimates

(* Cascade stage profile: guided MAS synthesis over the NLI study tasks
   (each with a synthesized full-detail TSQ), accumulated into per-stage
   totals so the JSON records where cascade time goes and what each stage
   prunes — including Duolint's stage 0. *)
let stage_profile () =
  let db = Lazy.force mas_db in
  let session = Lazy.force mas_session in
  let n_stages = List.length Duocore.Verify.all_stages in
  let seconds = Array.make n_stages 0.0 in
  let pruned = Array.make n_stages 0 in
  let static_warnings = ref 0 in
  let dedup_semantic = ref 0 in
  let batch_rounds = ref 0 and batched_probes = ref 0 and row_probes = ref 0 in
  List.iter
    (fun task ->
      let rng = Duobench.Rng.create 29 in
      let tsq =
        Duobench.Tsq_synth.synthesize rng db (Duobench.Mas.gold task)
          ~detail:Duobench.Tsq_synth.Full
      in
      let outcome =
        Duocore.Duoquest.synthesize ~config:profile_config ?tsq
          ~literals:task.Duobench.Mas.task_literals session
          ~nlq:task.Duobench.Mas.task_nlq ()
      in
      let st = outcome.Duocore.Enumerate.out_stats in
      static_warnings := !static_warnings + st.Duocore.Verify.static_warnings;
      dedup_semantic := !dedup_semantic + st.Duocore.Verify.dedup_semantic;
      batch_rounds := !batch_rounds + st.Duocore.Verify.batch_rounds;
      batched_probes := !batched_probes + st.Duocore.Verify.batched_probes;
      row_probes := !row_probes + st.Duocore.Verify.row_probes;
      List.iter
        (fun stage ->
          let i = Duocore.Verify.stage_index stage in
          seconds.(i) <- seconds.(i) +. st.Duocore.Verify.stage_seconds.(i);
          pruned.(i) <- pruned.(i) + Duocore.Verify.pruned_by st stage)
        Duocore.Verify.all_stages)
    Duobench.Mas.nli_study_tasks;
  ( seconds,
    pruned,
    !static_warnings,
    !dedup_semantic,
    !batch_rounds,
    !batched_probes,
    !row_probes )

(* Duopar profile: the B-tier MAS NLI tasks (three- and four-table joins,
   the heaviest verification load) synthesized with a full-detail TSQ,
   once sequentially and once with worker domains.  The run is
   pop-bounded, not time-bounded, so both configurations do identical
   work and the wall-clock ratio is a real speedup.  Candidate lists are
   digested to demonstrate Duopar's bit-identical-output guarantee. *)
let duopar_domains () =
  match Duocore.Enumerate.domains_from_env () with 1 -> 4 | n -> n

let duopar_tasks () =
  List.filter
    (fun t -> String.length t.Duobench.Mas.task_id > 0 && t.Duobench.Mas.task_id.[0] = 'B')
    Duobench.Mas.nli_study_tasks

let duopar_config domains =
  { micro_config with
    Duocore.Enumerate.time_budget_s = 30.0;
    max_pops = 3_000;
    domains }

(* Run the B-tier task list once under [config] against [pool] and
   return the outcomes. *)
let duopar_run_tasks config pool =
  let db = Lazy.force mas_db in
  let session = Lazy.force mas_session in
  List.map
    (fun task ->
      let rng = Duobench.Rng.create 29 in
      let tsq =
        Duobench.Tsq_synth.synthesize rng db (Duobench.Mas.gold task)
          ~detail:Duobench.Tsq_synth.Full
      in
      Duocore.Duoquest.synthesize ~config ?tsq ?pool
        ~literals:task.Duobench.Mas.task_literals session
        ~nlq:task.Duobench.Mas.task_nlq ())
    (duopar_tasks ())

let digest_outcomes outcomes =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          (List.concat_map
             (fun o ->
               List.map
                 (fun c -> Duosql.Pretty.query c.Duocore.Enumerate.cand_query)
                 o.Duocore.Enumerate.out_candidates)
             outcomes)))

let duopar_profile () =
  let run_at domains =
    let config = duopar_config domains in
    (* One pool for the whole task list (the server-style deployment);
       on a single-core host effective_domains clamps to 1 and the run
       takes the sequential path with no pool at all. *)
    let eff = Duocore.Enumerate.effective_domains config in
    let pool =
      if eff > 1 then Some (Duopar.Pool.create ~domains:eff) else None
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Duopar.Pool.shutdown pool)
      (fun () ->
        (* Start from a compacted heap so earlier profiles' GC state
           (major heap size, pending work) doesn't bleed into the
           comparison. *)
        Gc.compact ();
        let t0 = Duocore.Clock.now () in
        let outcomes = duopar_run_tasks config pool in
        (outcomes, Duocore.Clock.now () -. t0))
  in
  (* Pop-bounded runs do identical work every time, so wall-clock noise
     is the only variance.  Interleave the two configurations and keep
     each one's fastest pass: monotone drift across the bench (first
     pass cold, CPU ramping, heap state) then cancels instead of
     biasing whichever configuration happens to run first. *)
  let seq, sw1 = run_at 1 in
  let par, pw1 = run_at (duopar_domains ()) in
  let _, sw2 = run_at 1 in
  let _, pw2 = run_at (duopar_domains ()) in
  let seq_wall = Float.min sw1 sw2 in
  let par_wall = Float.min pw1 pw2 in
  (duopar_tasks (), seq, seq_wall, par, par_wall, digest_outcomes seq,
   digest_outcomes par)

(* --- Duopar v2 allocation + wasted-work profile ---------------------
   Measured with [overcommit] so the speculative machinery runs even on
   a single-core bench host.  Heap growth is read from [Gc.stat], which
   aggregates allocation across live domains — the pool stays alive
   around both readings.  The speculation-attributable cost of a
   configuration is its allocation minus the sequential run's, divided
   by the rounds run.

   Two views are reported:
   - [bytes_per_round] / [bytes_per_round_fixed]: the round *machinery*,
     isolated with a pinned floor-1 [spec_schedule] — each round stages
     exactly the state the committing loop pops next, so the expansion
     work cancels against the sequential baseline bit-for-bit and only
     the task-arena (resp. v1 allocate-per-task) plumbing remains;
   - the [controller] block: adaptive vs fixed 4*domains rounds at full
     speculation depth, where (1 - commit_rate) is the wasted work. *)

type duopar_alloc = {
  da_bytes_per_round : float option;
  da_rounds : int;
  da_tasks : int;
  da_hits : int;
  da_round_size : int;
  da_ewma : float;
  da_grows : int;
  da_shrinks : int;
  da_hash : string;
}

let heap_bytes () =
  let st = Gc.stat () in
  8.0 *. (st.Gc.minor_words +. st.Gc.major_words -. st.Gc.promoted_words)

let duopar_alloc_profile () =
  let domains = duopar_domains () in
  let measure ~domains ?schedule ~adaptive ~arena () =
    let config =
      { (duopar_config domains) with
        Duocore.Enumerate.overcommit = true;
        spec_adaptive = adaptive;
        spec_schedule = schedule;
        arena }
    in
    let pool =
      if domains > 1 then Some (Duopar.Pool.create ~domains) else None
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Duopar.Pool.shutdown pool)
      (fun () ->
        let b0 = heap_bytes () in
        let outcomes = duopar_run_tasks config pool in
        let b1 = heap_bytes () in
        (outcomes, b1 -. b0))
  in
  (* The wall-time profile above already forced every lazy (database,
     model context, index), so these runs measure steady state. *)
  let seq, seq_bytes = measure ~domains:1 ~adaptive:false ~arena:false () in
  let summarize (outcomes, bytes) =
    let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
    let rounds = sum (fun o -> o.Duocore.Enumerate.out_spec_rounds) in
    {
      da_bytes_per_round =
        (if rounds = 0 then None
         else Some (Float.max 0.0 (bytes -. seq_bytes) /. float_of_int rounds));
      da_rounds = rounds;
      da_tasks = sum (fun o -> o.Duocore.Enumerate.out_spec_tasks);
      da_hits = sum (fun o -> o.Duocore.Enumerate.out_spec_hits);
      da_round_size =
        List.fold_left
          (fun acc o -> max acc o.Duocore.Enumerate.out_spec_round_size)
          0 outcomes;
      da_ewma =
        List.fold_left
          (fun acc o -> Float.min acc o.Duocore.Enumerate.out_spec_ewma)
          1.0 outcomes;
      da_grows = sum (fun o -> o.Duocore.Enumerate.out_spec_grows);
      da_shrinks = sum (fun o -> o.Duocore.Enumerate.out_spec_shrinks);
      da_hash = digest_outcomes outcomes;
    }
  in
  let floor1 = Some (fun _ -> 1) in
  let machinery =
    summarize (measure ~domains ?schedule:floor1 ~adaptive:true ~arena:true ())
  in
  let machinery_v1 =
    summarize
      (measure ~domains ?schedule:floor1 ~adaptive:true ~arena:false ())
  in
  let adaptive = summarize (measure ~domains ~adaptive:true ~arena:true ()) in
  let fixed = summarize (measure ~domains ~adaptive:false ~arena:true ()) in
  let seq_hash = digest_outcomes seq in
  (domains, seq_hash, machinery, machinery_v1, adaptive, fixed)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path estimates =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"unit\": \"ns/run (Bechamel OLS estimate)\",\n";
  out "  \"scale\": \"%s\",\n"
    (match scale () with `Quick -> "quick" | `Full -> "full");
  out "  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, ns) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %.1f}%s\n" (json_escape name)
        ns
        (if i = List.length estimates - 1 then "" else ","))
    estimates;
  out "  ],\n";
  out "  \"speedups\": [\n";
  let sp = speedups estimates in
  List.iteri
    (fun i (base, on_ns, off_ns) ->
      out
        "    {\"benchmark\": \"%s\", \"planner_on_ns\": %.1f, \
         \"planner_off_ns\": %.1f, \"speedup\": %.2f}%s\n"
        (json_escape base) on_ns off_ns (off_ns /. on_ns)
        (if i = List.length sp - 1 then "" else ","))
    sp;
  out "  ],\n";
  let tname, trows, n_cand, reps, batched_s, unbatched_s =
    duodb_batch_profile ()
  in
  out "  \"duodb\": {\n";
  out "    \"table\": \"%s\",\n" (json_escape tname);
  out "    \"rows\": %d,\n" trows;
  (match
     ( List.assoc_opt "duodb/scan-range/kernel" estimates,
       List.assoc_opt "duodb/scan-range/scalar" estimates )
   with
  | Some kernel_ns, Some scalar_ns when kernel_ns > 0. ->
      out
        "    \"scan_range\": {\"kernel_ns\": %.1f, \"scalar_ns\": %.1f, \
         \"speedup\": %.2f},\n"
        kernel_ns scalar_ns (scalar_ns /. kernel_ns)
  | Some _, Some _ | Some _, None | None, Some _ | None, None -> ());
  out
    "    \"batched_probe\": {\"candidates\": %d, \"reps\": %d, \
     \"batched_wall_s\": %.6f, \"unbatched_wall_s\": %.6f, \"speedup\": \
     %.3f}\n"
    n_cand reps batched_s unbatched_s
    (if batched_s > 0. then unbatched_s /. batched_s else 0.);
  out "  },\n";
  let ( seconds,
        pruned,
        static_warnings,
        dedup_semantic,
        batch_rounds,
        batched_probes,
        row_probes ) =
    stage_profile ()
  in
  out "  \"verify_stages\": [\n";
  let n_stages = List.length Duocore.Verify.all_stages in
  List.iteri
    (fun i stage ->
      let idx = Duocore.Verify.stage_index stage in
      let s = seconds.(idx) and p = pruned.(idx) in
      out
        "    {\"stage\": \"%s\", \"seconds\": %.6f, \"pruned\": %d, \
         \"seconds_per_prune\": %s}%s\n"
        (Duocore.Verify.stage_name stage)
        s p
        (if p = 0 then "null" else Printf.sprintf "%.9f" (s /. float_of_int p))
        (if i = n_stages - 1 then "" else ","))
    Duocore.Verify.all_stages;
  out "  ],\n";
  let tasks, _seq, seq_wall, par, par_wall, seq_hash, par_hash =
    duopar_profile ()
  in
  (* Domains actually used: the requested count clamps to the cores
     available (overcommit is off), so a single-core host runs the
     "parallel" configuration on the sequential path. *)
  let n_domains =
    List.fold_left
      (fun acc o -> max acc o.Duocore.Enumerate.out_domains)
      1 par
  in
  (* Sum committed per-domain stats across the parallel outcomes. *)
  let per_domain =
    Array.init n_domains (fun _ -> Duocore.Verify.new_stats ())
  in
  List.iter
    (fun o ->
      Array.iteri
        (fun d ds ->
          if d < n_domains then
            Duocore.Verify.merge_stats ~into:per_domain.(d) ds)
        o.Duocore.Enumerate.out_domain_stats)
    par;
  out "  \"duopar\": {\n";
  out "    \"domains_requested\": %d,\n" (duopar_domains ());
  out "    \"domains\": %d,\n" n_domains;
  out "    \"cores_detected\": %d,\n" (Domain.recommended_domain_count ());
  out "    \"tasks\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun t -> Printf.sprintf "\"%s\"" (json_escape t.Duobench.Mas.task_id))
          tasks));
  out "    \"sequential_wall_s\": %.6f,\n" seq_wall;
  out "    \"parallel_wall_s\": %.6f,\n" par_wall;
  out "    \"speedup\": %.3f,\n"
    (if par_wall > 0. then seq_wall /. par_wall else 0.);
  out "    \"candidate_hash_sequential\": \"%s\",\n" seq_hash;
  out "    \"candidate_hash_parallel\": \"%s\",\n" par_hash;
  out "    \"identical_candidates\": %b,\n" (String.equal seq_hash par_hash);
  (* Speculation commit rate across the parallel runs: how much of the
     domains' speculative expand+verify work a pop actually consumed. *)
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 par in
  let spec_rounds = sum (fun o -> o.Duocore.Enumerate.out_spec_rounds) in
  let spec_tasks = sum (fun o -> o.Duocore.Enumerate.out_spec_tasks) in
  let spec_hits = sum (fun o -> o.Duocore.Enumerate.out_spec_hits) in
  out "    \"spec_rounds\": %d,\n" spec_rounds;
  out "    \"spec_tasks\": %d,\n" spec_tasks;
  out "    \"spec_committed\": %d,\n" spec_hits;
  (* A run with no speculative rounds wasted no speculative work, so its
     commit rate is 1.0 (not null/unknown). *)
  out "    \"commit_rate\": %s,\n"
    (if spec_tasks = 0 then "1.0"
     else
       Printf.sprintf "%.3f" (float_of_int spec_hits /. float_of_int spec_tasks));
  let alloc_domains, alloc_seq_hash, machinery, machinery_v1, adaptive, fixed =
    duopar_alloc_profile ()
  in
  let commit_rate a =
    if a.da_tasks = 0 then "1.0"
    else Printf.sprintf "%.3f" (float_of_int a.da_hits /. float_of_int a.da_tasks)
  in
  out "    \"controller\": {\n";
  out "      \"overcommit_domains\": %d,\n" alloc_domains;
  out "      \"round_size\": %d,\n" adaptive.da_round_size;
  out "      \"round_size_fixed\": %d,\n" fixed.da_round_size;
  out "      \"ewma_min\": %.3f,\n" adaptive.da_ewma;
  out "      \"grows\": %d,\n" adaptive.da_grows;
  out "      \"shrinks\": %d,\n" adaptive.da_shrinks;
  out "      \"commit_rate_adaptive\": %s,\n" (commit_rate adaptive);
  out "      \"commit_rate_fixed\": %s,\n" (commit_rate fixed);
  out "      \"spec_tasks_adaptive\": %d,\n" adaptive.da_tasks;
  out "      \"spec_tasks_fixed\": %d\n" fixed.da_tasks;
  out "    },\n";
  let bytes_field = function
    | None -> "null"
    | Some b -> Printf.sprintf "%.0f" b
  in
  (* Round-machinery allocation, isolated with floor-1 rounds (see
     [duopar_alloc_profile]): v2 task arenas vs the v1
     allocate-per-task path. *)
  out "    \"alloc\": {\n";
  out "      \"bytes_per_round\": %s,\n" (bytes_field machinery.da_bytes_per_round);
  out "      \"bytes_per_round_fixed\": %s,\n"
    (bytes_field machinery_v1.da_bytes_per_round);
  out "      \"machinery_rounds\": %d,\n" machinery.da_rounds;
  out "      \"spec_bytes_per_round_adaptive\": %s,\n"
    (bytes_field adaptive.da_bytes_per_round);
  out "      \"spec_rounds_adaptive\": %d,\n" adaptive.da_rounds;
  out "      \"identical_candidates\": %b\n"
    (String.equal alloc_seq_hash machinery.da_hash
    && String.equal alloc_seq_hash machinery_v1.da_hash
    && String.equal alloc_seq_hash adaptive.da_hash
    && String.equal alloc_seq_hash fixed.da_hash);
  out "    },\n";
  out "    \"per_domain\": [\n";
  Array.iteri
    (fun d st ->
      out
        "      {\"domain\": %d, \"pruned\": %d, \"full_executions\": %d, \
         \"stage_seconds\": [%s]}%s\n"
        d st.Duocore.Verify.pruned st.Duocore.Verify.full_executions
        (String.concat ", "
           (List.map
              (fun stage ->
                Printf.sprintf "%.6f"
                  st.Duocore.Verify.stage_seconds.(Duocore.Verify.stage_index
                                                    stage))
              Duocore.Verify.all_stages))
        (if d = n_domains - 1 then "" else ","))
    per_domain;
  out "    ]\n";
  out "  },\n";
  out
    "  \"verify_batching\": {\"batch_rounds\": %d, \"shared_scan_probes\": \
     %d, \"row_probes\": %d},\n"
    batch_rounds batched_probes row_probes;
  (* Duosem activity across the stage-profile runs: states and
     candidates collapsed by canonical-key dedup, and states pruned by
     the abstract cardinality bound. *)
  out
    "  \"duosem\": {\"dedup_semantic\": %d, \"pruned_by_cardinality\": %d},\n"
    dedup_semantic
    (pruned.(Duocore.Verify.stage_index Duocore.Verify.S_cardinality));
  out "  \"pruned_by_static\": %d,\n"
    (pruned.(Duocore.Verify.stage_index Duocore.Verify.S_static));
  out "  \"static_warnings\": %d\n" static_warnings;
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  List.iter
    (fun (base, on_ns, off_ns) ->
      Printf.printf "%-36s speedup %.2fx (%.0f -> %.0f ns)\n%!" base
        (off_ns /. on_ns) off_ns on_ns)
    sp

let () =
  let micro_only = ref false and json_path = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--micro-only" :: rest -> micro_only := true; parse_args rest
    | "--json" :: path :: rest -> json_path := Some path; parse_args rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %s (expected --micro-only, --json PATH)\n" arg;
        exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if not !micro_only then run_experiments ();
  let estimates = run_microbench () in
  Option.iter (fun path -> write_json path estimates) !json_path
