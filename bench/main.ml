(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (part 1), then times the core operations behind each
   experiment with Bechamel microbenchmarks (part 2).

   Scale control: DUOQUEST_BENCH_SCALE=quick runs small generated splits for
   smoke testing; the default regenerates the full paper-sized splits.

   Flags: --micro-only skips part 1; --json PATH additionally writes the
   microbenchmark estimates (and planner-on/off speedups) as JSON. *)

open Bechamel

let scale () =
  match Sys.getenv_opt "DUOQUEST_BENCH_SCALE" with
  | Some ("quick" | "QUICK") -> `Quick
  | Some _ | None -> `Full

(* --- part 1: paper tables and figures --- *)

let run_experiments () =
  let t = Duobench.Experiments.create ~scale:(scale ()) () in
  let ppf = Format.std_formatter in
  Format.fprintf ppf "Duoquest reproduction: regenerating all paper artifacts (scale=%s)@."
    (match scale () with `Quick -> "quick" | `Full -> "full");
  Duobench.Experiments.run_all t ppf;
  Format.pp_print_flush ppf ()

(* --- part 2: Bechamel microbenchmarks, one per table/figure --- *)

let movie_session = lazy (Duocore.Duoquest.create_session (Duobench.Movies.database ()))
let mas_db = lazy (Duobench.Mas.database ())
let mas_session = lazy (Duocore.Duoquest.create_session (Lazy.force mas_db))

let micro_config =
  { Duocore.Enumerate.default_config with
    Duocore.Enumerate.max_pops = 3_000;
    max_candidates = 10;
    time_budget_s = 0.5 }

let fig2_tsq =
  Duocore.Tsq.make ~types:[ Duodb.Datatype.Text ]
    ~tuples:[ [ Duocore.Tsq.Exact (Duodb.Value.Text "Forrest Gump") ] ]
    ()

let synth_movie mode tsq () =
  ignore
    (Duocore.Duoquest.synthesize ~config:micro_config ~mode ?tsq
       ~literals:[ Duodb.Value.Int 1995 ]
       (Lazy.force movie_session)
       ~nlq:"Find all movies from before 1995" ())

let mas_task_a1 = List.hd Duobench.Mas.nli_study_tasks

(* Planner-on vs planner-off executor pairs on MAS gold queries: A1 is a
   two-table join, B1 a three-table join and B4 a four-table join with
   grouping — each with a selective equality WHERE predicate, the shape of
   the GPQE verification hot path. *)
let executor_bench_tests () =
  let db = Lazy.force mas_db in
  let all_tasks = Duobench.Mas.nli_study_tasks @ Duobench.Mas.pbe_study_tasks in
  let pair id =
    let task = List.find (fun t -> t.Duobench.Mas.task_id = id) all_tasks in
    let q = Duobench.Mas.gold task in
    List.map
      (fun (tag, planner) ->
        Test.make ~name:(Printf.sprintf "executor/%s/planner-%s" id tag)
          (Staged.stage (fun () ->
               ignore (Duoengine.Executor.run_exn ~planner db q))))
      [ ("on", true); ("off", false) ]
  in
  List.concat_map pair [ "A1"; "B1"; "B4" ]

let bench_tests () =
  [
    (* table1: capability matrix rendering *)
    Test.make ~name:"table1/capability-matrix"
      (Staged.stage (fun () -> ignore (Duocore.Capability.to_string ())));
    (* table4: semantic rule checking over the catalogue *)
    Test.make ~name:"table4/semantic-rules"
      (Staged.stage (fun () ->
           let schema = Duobench.Movies.schema in
           List.iter
             (fun (_, example, _) ->
               match Duosql.Parser.query ~schema example with
               | Ok q -> ignore (Duocore.Semantics.check_query schema q)
               | Error _ -> ())
             Duocore.Semantics.catalogue));
    (* table5: dataset construction *)
    Test.make ~name:"table5/mas-database-build"
      (Staged.stage (fun () -> ignore (Duobench.Mas.database ())));
    (* fig5/fig6: one Duoquest study synthesis on MAS task A1 *)
    Test.make ~name:"fig5-6/duoquest-on-mas-A1"
      (Staged.stage (fun () ->
           ignore
             (Duocore.Duoquest.synthesize ~config:micro_config
                ~literals:mas_task_a1.Duobench.Mas.task_literals
                (Lazy.force mas_session)
                ~nlq:mas_task_a1.Duobench.Mas.task_nlq ())));
    (* fig7-9: one SQuID-style discovery round *)
    Test.make ~name:"fig7-9/pbe-discovery"
      (Staged.stage (fun () ->
           let db = Lazy.force mas_db in
           let gold = Duobench.Mas.gold (List.hd Duobench.Mas.pbe_study_tasks) in
           let rng = Duobench.Rng.create 5 in
           match Duobench.Tsq_synth.user_tuples rng db gold ~n:2 with
           | Some tuples -> ignore (Duopbe.Squid.discover db tuples)
           | None -> ()));
    (* fig10/fig11: dual-specification synthesis (the simulation's unit) *)
    Test.make ~name:"fig10-11/duoquest-dual-spec"
      (Staged.stage (synth_movie `Duoquest (Some fig2_tsq)));
    (* fig12: the two ablations' unit operations *)
    Test.make ~name:"fig12/nopq-chaining"
      (Staged.stage (synth_movie `No_pq (Some fig2_tsq)));
    Test.make ~name:"fig12/noguide-bfs"
      (Staged.stage (synth_movie `No_guide (Some fig2_tsq)));
    (* table6: TSQ synthesis itself *)
    Test.make ~name:"table6/tsq-synthesis"
      (Staged.stage (fun () ->
           let db = Lazy.force mas_db in
           let rng = Duobench.Rng.create 17 in
           ignore
             (Duobench.Tsq_synth.synthesize rng db
                (Duobench.Mas.gold mas_task_a1)
                ~detail:Duobench.Tsq_synth.Full)));
    (* table7/table8: gold task execution on MAS *)
    Test.make ~name:"table7-8/gold-task-execution"
      (Staged.stage (fun () ->
           let db = Lazy.force mas_db in
           List.iter
             (fun task ->
               ignore (Duoengine.Executor.run db (Duobench.Mas.gold task)))
             (Duobench.Mas.nli_study_tasks @ Duobench.Mas.pbe_study_tasks)));
  ]
  @ executor_bench_tests ()

let run_microbench () =
  print_newline ();
  print_endline "=== Bechamel microbenchmarks (one per paper artifact) ===";
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let tests = bench_tests () in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              estimates := (name, est) :: !estimates;
              Printf.printf "%-36s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-36s (no estimate)\n%!" name)
        ols)
    tests;
  List.rev !estimates

(* Pair every "X/planner-on" estimate with its "X/planner-off" twin. *)
let speedups estimates =
  List.filter_map
    (fun (name, on_ns) ->
      match Filename.chop_suffix_opt ~suffix:"/planner-on" name with
      | None -> None
      | Some base -> (
          match List.assoc_opt (base ^ "/planner-off") estimates with
          | Some off_ns when on_ns > 0. -> Some (base, on_ns, off_ns)
          | _ -> None))
    estimates

(* Cascade stage profile: guided MAS synthesis over the NLI study tasks
   (each with a synthesized full-detail TSQ), accumulated into per-stage
   totals so the JSON records where cascade time goes and what each stage
   prunes — including Duolint's stage 0. *)
let stage_profile () =
  let db = Lazy.force mas_db in
  let session = Lazy.force mas_session in
  let n_stages = List.length Duocore.Verify.all_stages in
  let seconds = Array.make n_stages 0.0 in
  let pruned = Array.make n_stages 0 in
  let static_warnings = ref 0 in
  List.iter
    (fun task ->
      let rng = Duobench.Rng.create 29 in
      let tsq =
        Duobench.Tsq_synth.synthesize rng db (Duobench.Mas.gold task)
          ~detail:Duobench.Tsq_synth.Full
      in
      let outcome =
        Duocore.Duoquest.synthesize ~config:micro_config ?tsq
          ~literals:task.Duobench.Mas.task_literals session
          ~nlq:task.Duobench.Mas.task_nlq ()
      in
      let st = outcome.Duocore.Enumerate.out_stats in
      static_warnings := !static_warnings + st.Duocore.Verify.static_warnings;
      List.iter
        (fun stage ->
          let i = Duocore.Verify.stage_index stage in
          seconds.(i) <- seconds.(i) +. st.Duocore.Verify.stage_seconds.(i);
          pruned.(i) <- pruned.(i) + Duocore.Verify.pruned_by st stage)
        Duocore.Verify.all_stages)
    Duobench.Mas.nli_study_tasks;
  (seconds, pruned, !static_warnings)

(* Duopar profile: the B-tier MAS NLI tasks (three- and four-table joins,
   the heaviest verification load) synthesized with a full-detail TSQ,
   once sequentially and once with worker domains.  The run is
   pop-bounded, not time-bounded, so both configurations do identical
   work and the wall-clock ratio is a real speedup.  Candidate lists are
   digested to demonstrate Duopar's bit-identical-output guarantee. *)
let duopar_domains () =
  match Duocore.Enumerate.domains_from_env () with 1 -> 4 | n -> n

let duopar_profile () =
  let db = Lazy.force mas_db in
  let session = Lazy.force mas_session in
  let tasks =
    List.filter
      (fun t -> String.length t.Duobench.Mas.task_id > 0 && t.Duobench.Mas.task_id.[0] = 'B')
      Duobench.Mas.nli_study_tasks
  in
  let config domains =
    { micro_config with
      Duocore.Enumerate.time_budget_s = 30.0;
      max_pops = 3_000;
      domains }
  in
  let run_at domains =
    let t0 = Duocore.Clock.now () in
    let outcomes =
      List.map
        (fun task ->
          let rng = Duobench.Rng.create 29 in
          let tsq =
            Duobench.Tsq_synth.synthesize rng db (Duobench.Mas.gold task)
              ~detail:Duobench.Tsq_synth.Full
          in
          Duocore.Duoquest.synthesize ~config:(config domains) ?tsq
            ~literals:task.Duobench.Mas.task_literals session
            ~nlq:task.Duobench.Mas.task_nlq ())
        tasks
    in
    (outcomes, Duocore.Clock.now () -. t0)
  in
  let digest outcomes =
    Digest.to_hex
      (Digest.string
         (String.concat "\n"
            (List.concat_map
               (fun o ->
                 List.map
                   (fun c -> Duosql.Pretty.query c.Duocore.Enumerate.cand_query)
                   o.Duocore.Enumerate.out_candidates)
               outcomes)))
  in
  let seq, seq_wall = run_at 1 in
  let par, par_wall = run_at (duopar_domains ()) in
  (tasks, seq, seq_wall, par, par_wall, digest seq, digest par)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path estimates =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"unit\": \"ns/run (Bechamel OLS estimate)\",\n";
  out "  \"scale\": \"%s\",\n"
    (match scale () with `Quick -> "quick" | `Full -> "full");
  out "  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, ns) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %.1f}%s\n" (json_escape name)
        ns
        (if i = List.length estimates - 1 then "" else ","))
    estimates;
  out "  ],\n";
  out "  \"speedups\": [\n";
  let sp = speedups estimates in
  List.iteri
    (fun i (base, on_ns, off_ns) ->
      out
        "    {\"benchmark\": \"%s\", \"planner_on_ns\": %.1f, \
         \"planner_off_ns\": %.1f, \"speedup\": %.2f}%s\n"
        (json_escape base) on_ns off_ns (off_ns /. on_ns)
        (if i = List.length sp - 1 then "" else ","))
    sp;
  out "  ],\n";
  let seconds, pruned, static_warnings = stage_profile () in
  out "  \"verify_stages\": [\n";
  let n_stages = List.length Duocore.Verify.all_stages in
  List.iteri
    (fun i stage ->
      let idx = Duocore.Verify.stage_index stage in
      let s = seconds.(idx) and p = pruned.(idx) in
      out
        "    {\"stage\": \"%s\", \"seconds\": %.6f, \"pruned\": %d, \
         \"seconds_per_prune\": %s}%s\n"
        (Duocore.Verify.stage_name stage)
        s p
        (if p = 0 then "null" else Printf.sprintf "%.9f" (s /. float_of_int p))
        (if i = n_stages - 1 then "" else ","))
    Duocore.Verify.all_stages;
  out "  ],\n";
  let tasks, _seq, seq_wall, par, par_wall, seq_hash, par_hash =
    duopar_profile ()
  in
  let n_domains = duopar_domains () in
  (* Sum committed per-domain stats across the parallel outcomes. *)
  let per_domain =
    Array.init n_domains (fun _ -> Duocore.Verify.new_stats ())
  in
  List.iter
    (fun o ->
      Array.iteri
        (fun d ds ->
          if d < n_domains then
            Duocore.Verify.merge_stats ~into:per_domain.(d) ds)
        o.Duocore.Enumerate.out_domain_stats)
    par;
  out "  \"duopar\": {\n";
  out "    \"domains\": %d,\n" n_domains;
  out "    \"cores_detected\": %d,\n" (Domain.recommended_domain_count ());
  out "    \"tasks\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun t -> Printf.sprintf "\"%s\"" (json_escape t.Duobench.Mas.task_id))
          tasks));
  out "    \"sequential_wall_s\": %.6f,\n" seq_wall;
  out "    \"parallel_wall_s\": %.6f,\n" par_wall;
  out "    \"speedup\": %.3f,\n"
    (if par_wall > 0. then seq_wall /. par_wall else 0.);
  out "    \"candidate_hash_sequential\": \"%s\",\n" seq_hash;
  out "    \"candidate_hash_parallel\": \"%s\",\n" par_hash;
  out "    \"identical_candidates\": %b,\n" (String.equal seq_hash par_hash);
  out "    \"per_domain\": [\n";
  Array.iteri
    (fun d st ->
      out
        "      {\"domain\": %d, \"pruned\": %d, \"full_executions\": %d, \
         \"stage_seconds\": [%s]}%s\n"
        d st.Duocore.Verify.pruned st.Duocore.Verify.full_executions
        (String.concat ", "
           (List.map
              (fun stage ->
                Printf.sprintf "%.6f"
                  st.Duocore.Verify.stage_seconds.(Duocore.Verify.stage_index
                                                    stage))
              Duocore.Verify.all_stages))
        (if d = n_domains - 1 then "" else ","))
    per_domain;
  out "    ]\n";
  out "  },\n";
  out "  \"pruned_by_static\": %d,\n"
    (pruned.(Duocore.Verify.stage_index Duocore.Verify.S_static));
  out "  \"static_warnings\": %d\n" static_warnings;
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  List.iter
    (fun (base, on_ns, off_ns) ->
      Printf.printf "%-36s speedup %.2fx (%.0f -> %.0f ns)\n%!" base
        (off_ns /. on_ns) off_ns on_ns)
    sp

let () =
  let micro_only = ref false and json_path = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--micro-only" :: rest -> micro_only := true; parse_args rest
    | "--json" :: path :: rest -> json_path := Some path; parse_args rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %s (expected --micro-only, --json PATH)\n" arg;
        exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if not !micro_only then run_experiments ();
  let estimates = run_microbench () in
  Option.iter (fun path -> write_json path estimates) !json_path
