(* par_check: fast Duopar v2 determinism + allocation gate (@bench-par).

   Runs a pop-bounded MAS workload under every controller regime —
   sequential, adaptive, fixed round size, adversarial [spec_schedule],
   no-arena — all with [overcommit] so speculation runs even on a
   single-core CI host, and fails if any configuration's candidate list
   diverges from the sequential run (the Duopar determinism contract).
   A refinement sweep (warm [rebase] mid-run) covers the serve path's
   controller inheritance the same way.

   Allocation gate: per-round heap growth is measured from [Gc.stat]
   deltas against the sequential run.  Floor-1 rounds (a pinned
   [spec_schedule] of 1) isolate the round *machinery* — every staged
   state is the state about to be popped, so expansion work cancels
   against the sequential baseline exactly — and the gate holds the
   arena path to a fixed per-round byte ceiling plus a >= 5x drop vs
   the v1 allocate-per-task path.  Pop bounds make the work
   deterministic, so the gate is stable enough for @check. *)

module Enumerate = Duocore.Enumerate

let die fmt =
  Printf.ksprintf (fun m -> prerr_endline ("par_check: " ^ m); exit 1) fmt

let mas_db = lazy (Duobench.Mas.database ())
let mas_session = lazy (Duocore.Duoquest.create_session (Lazy.force mas_db))

let tasks =
  lazy
    (List.filter
       (fun t ->
         String.length t.Duobench.Mas.task_id > 0
         && t.Duobench.Mas.task_id.[0] = 'B')
       Duobench.Mas.nli_study_tasks)

let base_config =
  { Enumerate.default_config with
    Enumerate.max_pops = 600;
    max_candidates = 10;
    time_budget_s = 30.0;
    overcommit = true }

let run_workload config pool =
  let db = Lazy.force mas_db in
  let session = Lazy.force mas_session in
  List.map
    (fun task ->
      let rng = Duobench.Rng.create 29 in
      let tsq =
        Duobench.Tsq_synth.synthesize rng db (Duobench.Mas.gold task)
          ~detail:Duobench.Tsq_synth.Full
      in
      Duocore.Duoquest.synthesize ~config ?tsq ?pool
        ~literals:task.Duobench.Mas.task_literals session
        ~nlq:task.Duobench.Mas.task_nlq ())
    (Lazy.force tasks)

(* Refinement sweep: start each task under a loosened sketch, step
   partway, tighten to the full sketch (a warm [rebase], which drops the
   speculation memo), and finish — the lifecycle a Duoserve refine
   drives, where the controller state carries across slices. *)
let loosen (tsq : Duocore.Tsq.t) =
  let tuples =
    match tsq.Duocore.Tsq.tuples with [] -> [] | t :: _ -> [ t ]
  in
  { tsq with
    Duocore.Tsq.tuples;
    sorted = false;
    negatives = [];
    min_support = None }

let run_refine_workload config pool =
  let db = Lazy.force mas_db in
  let session = Lazy.force mas_session in
  List.map
    (fun task ->
      let rng = Duobench.Rng.create 29 in
      let tsq =
        Duobench.Tsq_synth.synthesize rng db (Duobench.Mas.gold task)
          ~detail:Duobench.Tsq_synth.Full
      in
      match tsq with
      | None ->
          Duocore.Duoquest.synthesize ~config ?pool
            ~literals:task.Duobench.Mas.task_literals session
            ~nlq:task.Duobench.Mas.task_nlq ()
      | Some full ->
          let state =
            Duocore.Duoquest.prepare ~config ~tsq:(loosen full)
              ~literals:task.Duobench.Mas.task_literals ?pool session
              ~nlq:task.Duobench.Mas.task_nlq ()
          in
          ignore (Enumerate.step ~max_pops:200 state);
          Enumerate.rebase state ~tsq:full;
          ignore (Enumerate.step state);
          let o = Enumerate.outcome state in
          Enumerate.release state;
          o)
    (Lazy.force tasks)

let digest outcomes =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          (List.concat_map
             (fun o ->
               List.map
                 (fun c -> Duosql.Pretty.query c.Enumerate.cand_query)
                 o.Enumerate.out_candidates)
             outcomes)))

let heap_bytes () =
  let st = Gc.stat () in
  8.0 *. (st.Gc.minor_words +. st.Gc.major_words -. st.Gc.promoted_words)

(* Run [config] against a fresh pool (when [domains > 1]) and return
   (outcomes, heap bytes allocated).  [Gc.stat] aggregates across live
   domains, so the reading happens before the pool shuts down. *)
let measure workload config =
  let domains = config.Enumerate.domains in
  let pool =
    if domains > 1 then Some (Duopar.Pool.create ~domains) else None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Duopar.Pool.shutdown pool)
    (fun () ->
      let b0 = heap_bytes () in
      let outcomes = workload config pool in
      let b1 = heap_bytes () in
      (outcomes, b1 -. b0))

let spec_sums outcomes =
  List.fold_left
    (fun (r, t, h) o ->
      ( r + o.Enumerate.out_spec_rounds,
        t + o.Enumerate.out_spec_tasks,
        h + o.Enumerate.out_spec_hits ))
    (0, 0, 0) outcomes

let commit_rate outcomes =
  let _, tasks, hits = spec_sums outcomes in
  if tasks = 0 then 1.0 else float_of_int hits /. float_of_int tasks

(* The arena-path machinery may allocate at most this much per round in
   steady state (~14x above the observed value, still ~4x under the v1
   allocate-per-task path's). *)
let machinery_ceiling = 2_000.0

let () =
  let domains = 4 in
  (* Warm the lazies (database build, TSQ synthesis tables) outside any
     measured region. *)
  ignore (run_workload { base_config with Enumerate.domains = 1 } None);
  let seq, seq_bytes =
    measure run_workload { base_config with Enumerate.domains = 1 }
  in
  let seq_hash = digest seq in
  (* An adversarial controller schedule: round sizes thrash between the
     floor and far past the ceiling (begin_round clamps), exercising the
     sequential-degenerate rounds and the arena's capacity bound. *)
  let adversarial i =
    match i mod 4 with 0 -> 1 | 1 -> 1024 | 2 -> 3 | _ -> 7
  in
  let floor1 = Some (fun _ -> 1) in
  let regimes =
    [
      ("adaptive", { base_config with Enumerate.domains });
      ("fixed", { base_config with Enumerate.domains; spec_adaptive = false });
      ( "adversarial",
        { base_config with
          Enumerate.domains;
          spec_schedule = Some adversarial } );
      ("no-arena", { base_config with Enumerate.domains; arena = false });
      ( "floor1-arena",
        { base_config with Enumerate.domains; spec_schedule = floor1 } );
      ( "floor1-noarena",
        { base_config with
          Enumerate.domains;
          spec_schedule = floor1;
          arena = false } );
    ]
  in
  let results =
    List.map
      (fun (name, config) ->
        let outcomes, bytes = measure run_workload config in
        let h = digest outcomes in
        if not (String.equal h seq_hash) then
          die "%s candidates diverge from sequential (%s vs %s)" name h
            seq_hash;
        let rounds, _, _ = spec_sums outcomes in
        if rounds = 0 then die "%s ran no speculative rounds" name;
        let per_round =
          Float.max 0.0 (bytes -. seq_bytes) /. float_of_int rounds
        in
        Printf.printf
          "par_check: %-15s rounds=%-5d bytes/round=%-8.0f commit=%.3f\n%!"
          name rounds per_round (commit_rate outcomes);
        (name, (per_round, commit_rate outcomes)))
      regimes
  in
  let per_round name = fst (List.assoc name results) in
  let machinery = per_round "floor1-arena" in
  let machinery_v1 = per_round "floor1-noarena" in
  if machinery > machinery_ceiling then
    die "arena round machinery allocates %.0f bytes/round (ceiling %.0f)"
      machinery machinery_ceiling;
  if machinery *. 5.0 > machinery_v1 then
    die
      "arena round machinery (%.0f bytes/round) is not >= 5x below the v1 \
       path (%.0f)"
      machinery machinery_v1;
  (* Wasted speculative work under overcommit: the budget-aware adaptive
     controller must not waste more than the fixed 4*domains round. *)
  let rate name = snd (List.assoc name results) in
  if rate "adaptive" < rate "fixed" then
    die "adaptive commit rate %.3f fell below the fixed round's %.3f"
      (rate "adaptive") (rate "fixed");
  (* Refinement sweep: warm rebases with the controller running must
     stay bit-identical to the sequential refine path. *)
  let refine_seq, _ =
    measure run_refine_workload { base_config with Enumerate.domains = 1 }
  in
  let refine_par, _ =
    measure run_refine_workload { base_config with Enumerate.domains }
  in
  if not (String.equal (digest refine_seq) (digest refine_par)) then
    die "refine workload diverges from sequential (%s vs %s)"
      (digest refine_par) (digest refine_seq);
  Printf.printf
    "par_check: OK — %d regimes bit-identical to sequential; machinery %.0f \
     vs v1 %.0f bytes/round; adaptive commit %.3f >= fixed %.3f\n%!"
    (List.length regimes + 1)
    machinery machinery_v1 (rate "adaptive") (rate "fixed")
