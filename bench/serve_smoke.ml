(* serve_smoke: boot duoserve on a Unix socket, run a scripted session
   end-to-end over the wire, and shut the server down cleanly.

   This is the @serve-smoke gate wired into @check: it proves the whole
   stack — socket loop, protocol codec, session scheduling, refinement,
   cancellation, graceful drain — not just the in-process handle_line
   path the unit tests cover.  Exits 0 on success. *)

module Server = Duoserve.Server
module Client = Duoserve.Client
module Protocol = Duoserve.Protocol
module Json = Duoserve.Json
module Enumerate = Duocore.Enumerate

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("serve_smoke: " ^ msg); exit 1) fmt

let check name cond = if not cond then die "check failed: %s" name

let get_int j field =
  match Option.bind (Json.member field j) Json.get_int with
  | Some i -> i
  | None -> die "response missing integer %S" field

let get_str j field =
  match Option.bind (Json.member field j) Json.get_str with
  | Some s -> s
  | None -> die "response missing string %S" field

let get_bool j field =
  match Option.bind (Json.member field j) Json.get_bool with
  | Some b -> b
  | None -> die "response missing boolean %S" field

let () =
  let path = Printf.sprintf "/tmp/duoserve-smoke-%d.sock" (Unix.getpid ()) in
  let split = Duobench.Spider_gen.mini ~seed:11 ~n_dbs:2 ~per_db:2 () in
  let config =
    {
      Server.max_sessions = 4;
      slice_pops = 32;
      session_config =
        { Enumerate.default_config with
          Enumerate.max_pops = 800;
          max_candidates = 5;
          time_budget_s = 20.0 };
    }
  in
  let server = Server.create config split.Duobench.Spider_gen.databases in
  let listen =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 16;
    fd
  in
  let server_domain = Domain.spawn (fun () -> Server.serve server ~listen) in
  let c = Client.connect_unix path in
  (* 1. the database inventory *)
  let dbs =
    match
      Option.bind (Json.member "dbs" (Client.request_exn c Protocol.List_dbs))
        Json.get_list
    with
    | Some l -> List.filter_map Json.get_str l
    | None -> die "list_dbs gave no dbs"
  in
  check "two databases served" (List.length dbs = 2);
  (* 2. open a session on the first task *)
  let task = List.hd split.Duobench.Spider_gen.tasks in
  let open_req =
    Protocol.Open_session
      {
        Protocol.op_db = task.Duobench.Spider_gen.sp_db;
        op_nlq = task.Duobench.Spider_gen.sp_nlq;
        op_tsq = None;
        op_literals = Some task.Duobench.Spider_gen.sp_literals;
        op_max_pops = Some 400;
        op_max_candidates = None;
        op_time_budget_s = None;
      }
  in
  let opened = Client.request_exn c open_req in
  let sid = get_int opened "session" in
  check "session admitted running" (get_str opened "status" = "running");
  (* 3. poll until the enumeration finishes *)
  let rec poll tries =
    if tries > 2_000 then die "session %d never finished" sid;
    let r = Client.request_exn c (Protocol.Get_candidates (sid, None)) in
    if get_str r "status" = "running" then (
      Unix.sleepf 0.01;
      poll (tries + 1))
    else r
  in
  let done_resp = poll 0 in
  check "session finished" (get_str done_resp "status" = "finished");
  check "bounded pops" (get_int done_resp "pops" <= 400);
  (* 4. refine with a sketch derived from the gold answer and re-run *)
  let db = List.assoc task.Duobench.Spider_gen.sp_db split.Duobench.Spider_gen.databases in
  let warm_refines = ref 0 in
  let cold_refines = ref 0 in
  (match
     Duobench.Tsq_synth.synthesize (Duobench.Rng.create 7) db
       task.Duobench.Spider_gen.sp_gold ~detail:Duobench.Tsq_synth.Full
   with
  | None -> ()
  | Some tsq ->
      let refined = Client.request_exn c (Protocol.Refine_tsq (sid, tsq)) in
      check "refine restarts" (get_str refined "status" = "running");
      check "refinement counted" (get_int refined "refinements" = 1);
      (* no previous sketch to tighten: served by the from-root path *)
      check "first refine is cold" (not (get_bool refined "rebased"));
      incr cold_refines;
      check "refined run finishes" (get_str (poll 0) "status" = "finished");
      (* 4b. tighten the sketch in place: a negative tuple that matches no
         row keeps every candidate alive, so the warm rebase path must
         serve the refinement without re-enumerating from the root. *)
      let module Tsq = Duocore.Tsq in
      let tighter =
        Tsq.add_negative tsq
          (List.map
             (fun _ -> Tsq.Exact (Duodb.Value.Text "duoserve-smoke-neg"))
             (List.hd tsq.Tsq.tuples))
      in
      check "edit classifies as tightening"
        (Tsq.refines ~old:tsq ~new_:tighter = Tsq.Tightening);
      let warmed = Client.request_exn c (Protocol.Refine_tsq (sid, tighter)) in
      check "second refinement counted" (get_int warmed "refinements" = 2);
      check "tightening served by rebase" (get_bool warmed "rebased");
      incr warm_refines;
      check "rebased run finishes" (get_str (poll 0) "status" = "finished"));
  (* 5. a second session, cancelled mid-run *)
  let second =
    Client.request_exn c
      (Protocol.Open_session
         {
           Protocol.op_db = task.Duobench.Spider_gen.sp_db;
           op_nlq = task.Duobench.Spider_gen.sp_nlq;
           op_tsq = None;
           op_literals = None;
           op_max_pops = None;
           op_max_candidates = None;
           op_time_budget_s = None;
         })
  in
  let sid2 = get_int second "session" in
  let cancelled = Client.request_exn c (Protocol.Cancel sid2) in
  check "cancelled" (get_str cancelled "status" = "cancelled");
  (* 6. close both, check the books, drain *)
  ignore (Client.request_exn c (Protocol.Close sid));
  ignore (Client.request_exn c (Protocol.Close sid2));
  let stats = Client.request_exn c Protocol.Stats in
  check "no sessions left" (get_int stats "sessions" = 0);
  check "two opened" (get_int stats "opened" = 2);
  check "refinements booked" (get_int stats "refined" = !warm_refines + !cold_refines);
  check "warm rebases booked" (get_int stats "rebased" = !warm_refines);
  let bye = Client.request_exn c Protocol.Shutdown in
  check "draining acknowledged"
    (Option.bind (Json.member "draining" bye) Json.get_bool = Some true);
  Client.close c;
  Domain.join server_domain;
  Server.destroy server;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  print_endline "serve_smoke: OK"
