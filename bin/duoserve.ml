(* duoserve: the Duoquest synthesis service.

   Boots a server over a generated Spider-like database set and speaks
   the Duoserve line protocol (see lib/serve/protocol.mli) on a Unix or
   TCP socket until a shutdown request drains it. *)

open Cmdliner
module Enumerate = Duocore.Enumerate

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/duoserve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path to listen on.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen on 127.0.0.1:$(docv) instead of a Unix socket.")

let dbs_arg =
  Arg.(
    value & opt int 4
    & info [ "dbs" ] ~docv:"N"
        ~doc:"Number of generated Spider-like databases to serve.")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"SEED" ~doc:"Database generator seed.")

let max_sessions_arg =
  Arg.(
    value & opt int 32
    & info [ "max-sessions" ] ~docv:"N"
        ~doc:"Admission bound: reject opens beyond $(docv) open sessions.")

let slice_arg =
  Arg.(
    value & opt int 64
    & info [ "slice" ] ~docv:"POPS"
        ~doc:"Frontier pops per scheduler time slice.")

let max_pops_arg =
  Arg.(
    value & opt int 5_000
    & info [ "max-pops" ] ~docv:"N" ~doc:"Per-session enumeration pop budget.")

let max_candidates_arg =
  Arg.(
    value & opt int 10
    & info [ "max-candidates" ] ~docv:"N"
        ~doc:"Per-session candidate budget.")

let time_budget_arg =
  Arg.(
    value & opt float 10.0
    & info [ "time-budget" ] ~docv:"SECONDS"
        ~doc:"Per-session active-stepping time budget.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for the shared speculation pool (default: \
           DUOQUEST_DOMAINS, clamped to the cores available).")

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let run socket port n_dbs seed max_sessions slice max_pops max_candidates
    time_budget domains =
  let session_config =
    { Enumerate.default_config with
      Enumerate.max_pops;
      max_candidates;
      time_budget_s = time_budget;
      domains = (match domains with
                | Some d -> d
                | None -> Enumerate.domains_from_env ()) }
  in
  let config =
    { Duoserve.Server.max_sessions; slice_pops = slice; session_config }
  in
  let split =
    Duobench.Spider_gen.mini ~seed ~n_dbs:(max 1 n_dbs) ~per_db:1 ()
  in
  let server = Duoserve.Server.create config split.Duobench.Spider_gen.databases in
  let listen, where =
    match port with
    | Some p -> (listen_tcp p, Printf.sprintf "127.0.0.1:%d" p)
    | None -> (listen_unix socket, socket)
  in
  Printf.printf "duoserve: %d databases, %d worker domains, listening on %s\n%!"
    (List.length split.Duobench.Spider_gen.databases)
    (Enumerate.effective_domains session_config)
    where;
  Fun.protect
    ~finally:(fun () ->
      Duoserve.Server.destroy server;
      match port with
      | None -> ( try Unix.unlink socket with Unix.Unix_error _ -> ())
      | Some _ -> ())
    (fun () -> Duoserve.Server.serve server ~listen);
  Printf.printf "duoserve: drained, bye\n%!";
  `Ok ()

let () =
  let doc = "Serve concurrent Duoquest synthesis sessions over a socket" in
  let cmd =
    Cmd.v
      (Cmd.info "duoserve" ~version:"1.0.0" ~doc)
      Term.(
        ret
          (const run $ socket_arg $ port_arg $ dbs_arg $ seed_arg
         $ max_sessions_arg $ slice_arg $ max_pops_arg $ max_candidates_arg
         $ time_budget_arg $ domains_arg))
  in
  exit (Cmd.eval cmd)
