(* Duolint command-line front-end: lint SQL files against a bundled
   schema, or sweep the built-in gold corpora (MAS study tasks, the
   generated Spider-like split, the movies examples).  Exit status: 0 when
   no rule of severity [Error] fired (warnings are advice), 1 when at
   least one error fired, 2 on usage, I/O or parse problems.

   File format: one query per line; blank lines and [--] comments are
   skipped, a trailing [;] is allowed. *)

open Cmdliner
module Diag = Duolint.Diagnostic
module Analyze = Duolint.Analyze

let schema_of = function
  | "movies" -> Ok Duobench.Movies.schema
  | "mas" -> Ok Duobench.Mas.schema
  | other -> Error (Printf.sprintf "unknown schema %S (try: movies, mas)" other)

type totals = { mutable queries : int; mutable errors : int; mutable warnings : int }

let report ?(quiet = false) totals ~where sql diags =
  totals.queries <- totals.queries + 1;
  let errs = Analyze.errors diags and warns = Analyze.warnings diags in
  totals.errors <- totals.errors + List.length errs;
  totals.warnings <- totals.warnings + List.length warns;
  if errs <> [] || ((not quiet) && warns <> []) then begin
    Printf.printf "%s: %s\n" where sql;
    List.iter (fun d -> Format.printf "  %a@." Diag.pp d) (if quiet then errs else diags)
  end

let strip_statement line =
  let line = String.trim line in
  let line =
    match String.index_opt line ';' with
    | Some i -> String.trim (String.sub line 0 i)
    | None -> line
  in
  if line = "" || (String.length line >= 2 && line.[0] = '-' && line.[1] = '-')
  then None
  else Some line

let lint_file ~quiet totals schema path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error e ->
      Printf.eprintf "duolint: %s\n" e;
      false
  | lines ->
      List.iteri
        (fun lineno line ->
          match strip_statement line with
          | None -> ()
          | Some sql -> (
              let where = Printf.sprintf "%s:%d" path (lineno + 1) in
              match Duosql.Parser.query ~schema sql with
              | Error e ->
                  Printf.printf "%s: parse error: %s\n" where e;
                  (* a parse failure counts as an error finding *)
                  totals.errors <- totals.errors + 1
              | Ok q -> report ~quiet totals ~where sql (Analyze.check_query schema q)))
        lines;
      true

(* The gold corpora must come through stage 0 untouched: a lint error on a
   gold query would mean the cascade prunes a correct answer. *)
let lint_golds ~quiet totals =
  List.iter
    (fun (t : Duobench.Mas.task) ->
      let q = Duobench.Mas.gold t in
      report ~quiet totals
        ~where:(Printf.sprintf "mas:%s" t.Duobench.Mas.task_id)
        (Duosql.Pretty.query q)
        (Analyze.check_query Duobench.Mas.schema q))
    (Duobench.Mas.nli_study_tasks @ Duobench.Mas.pbe_study_tasks);
  let split = Duobench.Spider_gen.mini ~n_dbs:4 ~per_db:6 () in
  List.iter
    (fun (t : Duobench.Spider_gen.task) ->
      match List.assoc_opt t.Duobench.Spider_gen.sp_db split.Duobench.Spider_gen.databases with
      | None -> ()
      | Some db ->
          let q = t.Duobench.Spider_gen.sp_gold in
          report ~quiet totals
            ~where:(Printf.sprintf "spider:%s" t.Duobench.Spider_gen.sp_db)
            (Duosql.Pretty.query q)
            (Analyze.check_query (Duodb.Database.schema db) q))
    split.Duobench.Spider_gen.tasks

let main schema_name golds quiet files =
  if (not golds) && files = [] then
    `Error (true, "nothing to lint: give SQL files or --golds")
  else
    match schema_of schema_name with
    | Error e -> `Error (false, e)
    | Ok schema ->
        let totals = { queries = 0; errors = 0; warnings = 0 } in
        let io_ok =
          List.for_all (fun f -> lint_file ~quiet totals schema f) files
        in
        if golds then lint_golds ~quiet totals;
        Printf.printf "%d queries, %d errors, %d warnings\n" totals.queries
          totals.errors totals.warnings;
        if not io_ok then `Error (false, "could not read every input file")
        else if totals.errors > 0 then `Ok 1
        else `Ok 0

let cmd =
  let schema_arg =
    let doc = "Schema the SQL files are written against: $(b,movies) or $(b,mas)." in
    Arg.(value & opt string "movies" & info [ "s"; "schema" ] ~docv:"SCHEMA" ~doc)
  in
  let golds_arg =
    let doc =
      "Also lint the built-in gold corpora (MAS study tasks and the \
       generated Spider-like fixtures) against their own schemas."
    in
    Arg.(value & flag & info [ "golds" ] ~doc)
  in
  let quiet_arg =
    let doc = "Report errors only; suppress warnings." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let files_arg =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"SQL files, one query per line.")
  in
  let doc = "Static analysis for Duoquest SQL (schema/type checks, satisfiability, structure, redundancy)" in
  Cmd.v
    (Cmd.info "duolint" ~version:"1.0.0" ~doc)
    Term.(ret (const main $ schema_arg $ golds_arg $ quiet_arg $ files_arg))

let () = exit (Cmd.eval' cmd)
