(* Duolint command-line front-end: lint SQL files against a bundled
   schema, or sweep the built-in gold corpora (MAS study tasks, the
   generated Spider-like split, the movies examples).  Exit status: 0 when
   no rule of severity [Error] fired (warnings are advice), 1 when at
   least one error fired, 2 on usage, I/O or parse problems.

   [--json] switches the report to one machine-readable JSON document on
   stdout (stable field order, Duoserve's codec); [--explain] adds the
   Duosem view of each query — canonical form, constraint-reasoner facts
   and the abstract row-count interval.

   File format: one query per line; blank lines and [--] comments are
   skipped, a trailing [;] is allowed. *)

open Cmdliner
module Diag = Duolint.Diagnostic
module Analyze = Duolint.Analyze
module Duosem = Duolint.Duosem
module Json = Duoserve.Json

type totals = { mutable queries : int; mutable errors : int; mutable warnings : int }

(* One run's output sink: totals plus, in JSON mode, the accumulated
   diagnostic and explanation objects (newest first). *)
type ctx = {
  quiet : bool;
  json : bool;
  explain : bool;
  totals : totals;
  mutable diags_json : Json.t list;
  mutable explains_json : Json.t list;
}

let diag_json ~where ~sql (d : Diag.t) =
  Json.Obj
    [
      ("where", Json.Str where);
      ("sql", Json.Str sql);
      ("rule", Json.Str (Diag.rule_name d.Diag.d_rule));
      ( "severity",
        Json.Str
          (match Diag.severity d.Diag.d_rule with
          | Diag.Error -> "error"
          | Diag.Warning -> "warning") );
      ("clause", Json.Str (Diag.clause_name d.Diag.d_clause));
      ("message", Json.Str d.Diag.d_message);
    ]

let parse_error_json ~where ~sql msg =
  Json.Obj
    [
      ("where", Json.Str where);
      ("sql", Json.Str sql);
      ("rule", Json.Str "parse_error");
      ("severity", Json.Str "error");
      ("clause", Json.Str "");
      ("message", Json.Str msg);
    ]

let card_json (c : Duosem.card) =
  Json.Obj
    [
      ("lo", Json.Num (float_of_int c.Duosem.c_lo));
      ( "hi",
        match c.Duosem.c_hi with
        | None -> Json.Null
        | Some n -> Json.Num (float_of_int n) );
    ]

let explain_query ctx schema ~where sql q =
  let ex = Duosem.explain (Duosem.prepare schema) q in
  if ctx.json then
    ctx.explains_json <-
      Json.Obj
        [
          ("where", Json.Str where);
          ("sql", Json.Str sql);
          ("canonical", Json.Str ex.Duosem.ex_canonical);
          ("cardinality", card_json ex.Duosem.ex_card);
          ("facts", Json.List (List.map (fun f -> Json.Str f) ex.Duosem.ex_facts));
        ]
      :: ctx.explains_json
  else begin
    Printf.printf "%s: %s\n" where sql;
    Printf.printf "  canonical: %s\n" ex.Duosem.ex_canonical;
    Printf.printf "  cardinality: %s\n" (Duosem.card_to_string ex.Duosem.ex_card);
    List.iter (fun f -> Printf.printf "  %s\n" f) ex.Duosem.ex_facts
  end

let report ctx ~where sql diags =
  ctx.totals.queries <- ctx.totals.queries + 1;
  let errs = Analyze.errors diags and warns = Analyze.warnings diags in
  ctx.totals.errors <- ctx.totals.errors + List.length errs;
  ctx.totals.warnings <- ctx.totals.warnings + List.length warns;
  let shown = if ctx.quiet then errs else diags in
  if ctx.json then
    ctx.diags_json <-
      List.rev_append (List.map (diag_json ~where ~sql) shown) ctx.diags_json
  else if errs <> [] || ((not ctx.quiet) && warns <> []) then begin
    Printf.printf "%s: %s\n" where sql;
    List.iter (fun d -> Format.printf "  %a@." Diag.pp d) shown
  end

let parse_failure ctx ~where sql msg =
  ctx.totals.errors <- ctx.totals.errors + 1;
  if ctx.json then
    ctx.diags_json <- parse_error_json ~where ~sql msg :: ctx.diags_json
  else Printf.printf "%s: parse error: %s\n" where msg

let check ctx schema ~where sql q =
  report ctx ~where sql (Analyze.check_query schema q);
  if ctx.explain then explain_query ctx schema ~where sql q

let schema_of = function
  | "movies" -> Ok Duobench.Movies.schema
  | "mas" -> Ok Duobench.Mas.schema
  | other -> Error (Printf.sprintf "unknown schema %S (try: movies, mas)" other)

let strip_statement line =
  let line = String.trim line in
  let line =
    match String.index_opt line ';' with
    | Some i -> String.trim (String.sub line 0 i)
    | None -> line
  in
  if line = "" || (String.length line >= 2 && line.[0] = '-' && line.[1] = '-')
  then None
  else Some line

let lint_file ctx schema path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error e ->
      Printf.eprintf "duolint: %s\n" e;
      false
  | lines ->
      List.iteri
        (fun lineno line ->
          match strip_statement line with
          | None -> ()
          | Some sql -> (
              let where = Printf.sprintf "%s:%d" path (lineno + 1) in
              match Duosql.Parser.query ~schema sql with
              | Error e -> parse_failure ctx ~where sql e
              | Ok q -> check ctx schema ~where sql q))
        lines;
      true

(* The gold corpora must come through stage 0 untouched: a lint error on a
   gold query would mean the cascade prunes a correct answer. *)
let lint_golds ctx =
  List.iter
    (fun (t : Duobench.Mas.task) ->
      let q = Duobench.Mas.gold t in
      check ctx Duobench.Mas.schema
        ~where:(Printf.sprintf "mas:%s" t.Duobench.Mas.task_id)
        (Duosql.Pretty.query q) q)
    (Duobench.Mas.nli_study_tasks @ Duobench.Mas.pbe_study_tasks);
  let split = Duobench.Spider_gen.mini ~n_dbs:4 ~per_db:6 () in
  List.iter
    (fun (t : Duobench.Spider_gen.task) ->
      match List.assoc_opt t.Duobench.Spider_gen.sp_db split.Duobench.Spider_gen.databases with
      | None -> ()
      | Some db ->
          let q = t.Duobench.Spider_gen.sp_gold in
          check ctx
            (Duodb.Database.schema db)
            ~where:(Printf.sprintf "spider:%s" t.Duobench.Spider_gen.sp_db)
            (Duosql.Pretty.query q) q)
    split.Duobench.Spider_gen.tasks

let summary ctx =
  if ctx.json then begin
    let base =
      [
        ("queries", Json.Num (float_of_int ctx.totals.queries));
        ("errors", Json.Num (float_of_int ctx.totals.errors));
        ("warnings", Json.Num (float_of_int ctx.totals.warnings));
        ("diagnostics", Json.List (List.rev ctx.diags_json));
      ]
    in
    let fields =
      if ctx.explain then
        base @ [ ("explanations", Json.List (List.rev ctx.explains_json)) ]
      else base
    in
    print_endline (Json.to_string (Json.Obj fields))
  end
  else
    Printf.printf "%d queries, %d errors, %d warnings\n" ctx.totals.queries
      ctx.totals.errors ctx.totals.warnings

let main schema_name golds quiet json explain files =
  if (not golds) && files = [] then
    `Error (true, "nothing to lint: give SQL files or --golds")
  else
    match schema_of schema_name with
    | Error e -> `Error (false, e)
    | Ok schema ->
        let ctx =
          {
            quiet;
            json;
            explain;
            totals = { queries = 0; errors = 0; warnings = 0 };
            diags_json = [];
            explains_json = [];
          }
        in
        let io_ok = List.for_all (fun f -> lint_file ctx schema f) files in
        if golds then lint_golds ctx;
        summary ctx;
        if not io_ok then `Error (false, "could not read every input file")
        else if ctx.totals.errors > 0 then `Ok 1
        else `Ok 0

let cmd =
  let schema_arg =
    let doc = "Schema the SQL files are written against: $(b,movies) or $(b,mas)." in
    Arg.(value & opt string "movies" & info [ "s"; "schema" ] ~docv:"SCHEMA" ~doc)
  in
  let golds_arg =
    let doc =
      "Also lint the built-in gold corpora (MAS study tasks and the \
       generated Spider-like fixtures) against their own schemas."
    in
    Arg.(value & flag & info [ "golds" ] ~doc)
  in
  let quiet_arg =
    let doc = "Report errors only; suppress warnings." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let json_arg =
    let doc =
      "Emit one JSON document on stdout instead of the text report \
       (fields in a fixed order: queries, errors, warnings, diagnostics, \
       then explanations under $(b,--explain))."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let explain_arg =
    let doc =
      "For every query that parses, also print the Duosem analysis: the \
       canonical form, the constraint-reasoner facts (implied \
       predicates, redundant DISTINCT, eliminable joins) and the \
       abstract row-count interval."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let files_arg =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"SQL files, one query per line.")
  in
  let doc = "Static analysis for Duoquest SQL (schema/type checks, satisfiability, structure, redundancy)" in
  Cmd.v
    (Cmd.info "duolint" ~version:"1.0.0" ~doc)
    Term.(
      ret
        (const main $ schema_arg $ golds_arg $ quiet_arg $ json_arg
       $ explain_arg $ files_arg))

let () = exit (Cmd.eval' cmd)
