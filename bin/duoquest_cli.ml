(* Command-line front-end for Duoquest (the paper's web UI, Section 4,
   reduced to a terminal): issue an NLQ with an optional table sketch query
   against one of the bundled databases, browse ranked candidates with
   result previews, or exercise the autocomplete index. *)

open Cmdliner

let load_db = function
  | "movies" -> Ok (Duobench.Movies.database ())
  | "mas" -> Ok (Duobench.Mas.database ())
  | other -> Error (Printf.sprintf "unknown database %S (try: movies, mas)" other)

let db_arg =
  let doc = "Database to query: $(b,movies) or $(b,mas)." in
  Arg.(value & opt string "movies" & info [ "d"; "db" ] ~docv:"DB" ~doc)

(* TSQ cell syntax: "_" = any; "lo..hi" = numeric range; number or text
   otherwise.  Cells are separated by ";". *)
let parse_cell s =
  let s = String.trim s in
  if s = "_" then Ok Duocore.Tsq.Any
  else
    match String.index_opt s '.' with
    | Some i
      when i + 1 < String.length s
           && s.[i + 1] = '.'
           && Option.is_some (float_of_string_opt (String.sub s 0 i)) -> (
        let lo = String.sub s 0 i in
        let hi = String.sub s (i + 2) (String.length s - i - 2) in
        match float_of_string_opt lo, float_of_string_opt hi with
        | Some l, Some h ->
            let v f =
              if Float.is_integer f then Duodb.Value.Int (int_of_float f)
              else Duodb.Value.Float f
            in
            Ok (Duocore.Tsq.Range (v l, v h))
        | _ -> Error (Printf.sprintf "bad range cell %S" s))
    | _ -> (
        match int_of_string_opt s with
        | Some n -> Ok (Duocore.Tsq.Exact (Duodb.Value.Int n))
        | None -> (
            match float_of_string_opt s with
            | Some f -> Ok (Duocore.Tsq.Exact (Duodb.Value.Float f))
            | None -> Ok (Duocore.Tsq.Exact (Duodb.Value.Text s))))

let parse_tuple s =
  let cells = String.split_on_char ';' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> (
        match parse_cell c with
        | Ok cell -> go (cell :: acc) rest
        | Error e -> Error e)
  in
  go [] cells

let parse_types s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match Duodb.Datatype.of_string (String.trim p) with
        | Some ty -> go (ty :: acc) rest
        | None -> Error (Printf.sprintf "unknown type %S (text|number)" p))
  in
  go [] parts

let print_candidate db k (c : Duocore.Enumerate.candidate) =
  Printf.printf "#%d  (confidence %.4g)\n  %s\n  = %s\n" k
    c.Duocore.Enumerate.cand_confidence
    (Duosql.Pretty.query c.Duocore.Enumerate.cand_query)
    (Duosql.Describe.query c.Duocore.Enumerate.cand_query);
  (* the front-end's "Query Preview": first rows of the result *)
  match Duoengine.Executor.run db c.Duocore.Enumerate.cand_query with
  | Error e -> Printf.printf "  (preview failed: %s)\n" e
  | Ok res ->
      let rows = res.Duoengine.Executor.res_rows in
      let preview = List.filteri (fun i _ -> i < 3) rows in
      List.iter
        (fun row ->
          Printf.printf "    | %s\n"
            (String.concat " | "
               (Array.to_list (Array.map Duodb.Value.to_display row))))
        preview;
      if List.length rows > 3 then
        Printf.printf "    ... (%d rows total)\n" (List.length rows)

let query_cmd =
  let nlq_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NLQ" ~doc:"The natural language query. Mark literal text values with double quotes.")
  in
  let types_arg =
    Arg.(value & opt (some string) None & info [ "types" ] ~docv:"T1,T2" ~doc:"TSQ column type annotations, e.g. $(b,text,number).")
  in
  let tuples_arg =
    Arg.(value & opt_all string [] & info [ "tuple" ] ~docv:"CELLS" ~doc:"A TSQ example tuple; cells separated by $(b,;). Use $(b,_) for an empty cell and $(b,lo..hi) for a range. Repeatable.")
  in
  let sorted_arg =
    Arg.(value & flag & info [ "sorted" ] ~doc:"The desired output is ordered (the TSQ's sorting flag).")
  in
  let limit_arg =
    Arg.(value & opt int 0 & info [ "limit" ] ~docv:"K" ~doc:"The desired output is limited to K rows (0 = unlimited).")
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Show at most N candidates.")
  in
  let budget_arg =
    Arg.(value & opt float 10.0 & info [ "budget" ] ~docv:"SECONDS" ~doc:"Synthesis time budget.")
  in
  let domains_arg =
    Arg.(
      value
      & opt int (Duocore.Enumerate.domains_from_env ())
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for parallel enumeration (Duopar). Defaults to \
             $(b,DUOQUEST_DOMAINS) or 1. Candidates are identical for any \
             value.")
  in
  let run db_name nlq types tuples sorted limit top budget domains =
    match load_db db_name with
    | Error e -> `Error (false, e)
    | Ok db -> (
        let session = Duocore.Duoquest.create_session db in
        let types =
          match types with
          | None -> Ok None
          | Some s -> Result.map Option.some (parse_types s)
        in
        let tuples =
          List.fold_left
            (fun acc t ->
              match acc, parse_tuple t with
              | Ok acc, Ok tup -> Ok (acc @ [ tup ])
              | (Error _ as e), _ -> e
              | _, (Error _ as e) -> Result.map (fun _ -> []) e)
            (Ok []) tuples
        in
        match types, tuples with
        | Error e, _ | _, Error e -> `Error (false, e)
        | Ok types, Ok tuples ->
            let has_tsq = types <> None || tuples <> [] || sorted || limit > 0 in
            let tsq =
              if has_tsq then Some (Duocore.Tsq.make ?types ~tuples ~sorted ~limit ())
              else None
            in
            let config =
              { Duocore.Enumerate.default_config with
                Duocore.Enumerate.time_budget_s = budget;
                max_candidates = top;
                domains }
            in
            let outcome =
              Duocore.Duoquest.synthesize ~config ?tsq session ~nlq ()
            in
            if outcome.Duocore.Enumerate.out_candidates = [] then
              print_endline
                "No candidate query satisfied the specification; try rephrasing \
                 the NLQ or refining the sketch."
            else
              List.iteri
                (fun i c -> print_candidate db (i + 1) c)
                outcome.Duocore.Enumerate.out_candidates;
            `Ok ())
  in
  let term =
    Term.(
      ret
        (const run $ db_arg $ nlq_arg $ types_arg $ tuples_arg $ sorted_arg
       $ limit_arg $ top_arg $ budget_arg $ domains_arg))
  in
  Cmd.v (Cmd.info "query" ~doc:"Synthesize SQL from an NLQ plus optional table sketch query") term

let complete_cmd =
  let prefix_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PREFIX" ~doc:"Prefix to complete.")
  in
  let run db_name prefix =
    match load_db db_name with
    | Error e -> `Error (false, e)
    | Ok db ->
        let index = Duodb.Index.build db in
        let hits = Duodb.Index.complete index ~limit:15 ~prefix () in
        if hits = [] then print_endline "(no completions)"
        else
          List.iter
            (fun h ->
              Printf.printf "%-30s %s.%s\n" h.Duodb.Index.hit_value
                h.Duodb.Index.hit_table h.Duodb.Index.hit_column)
            hits;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "complete" ~doc:"Autocomplete a literal value against the inverted column index")
    Term.(ret (const run $ db_arg $ prefix_arg))

let schema_cmd =
  let run db_name =
    match load_db db_name with
    | Error e -> `Error (false, e)
    | Ok db ->
        Format.printf "%a@." Duodb.Schema.pp (Duodb.Database.schema db);
        Format.printf "%a@." Duodb.Database.pp_stats db;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "schema" ~doc:"Show the schema and row counts of a bundled database")
    Term.(ret (const run $ db_arg))

let export_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Output directory for one CSV file per table.")
  in
  let run db_name dir =
    match load_db db_name with
    | Error e -> `Error (false, e)
    | Ok db -> (
        match Duodb.Csv.export_database db ~dir with
        | Ok () ->
            Printf.printf "exported %d tables to %s\n"
              (Duodb.Schema.num_tables (Duodb.Database.schema db))
              dir;
            `Ok ()
        | Error e -> `Error (false, e))
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a bundled database as CSV files")
    Term.(ret (const run $ db_arg $ dir_arg))

let run_sql_cmd =
  let sql_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"A SQL query to execute directly.")
  in
  let run db_name sql =
    match load_db db_name with
    | Error e -> `Error (false, e)
    | Ok db -> (
        match Duosql.Parser.query ~schema:(Duodb.Database.schema db) sql with
        | Error e -> `Error (false, "parse error: " ^ e)
        | Ok q -> (
            match Duoengine.Executor.run db q with
            | Error e -> `Error (false, "execution error: " ^ e)
            | Ok res ->
                print_string
                  (Duodb.Csv.rows_to_string
                     ~header:(List.map fst res.Duoengine.Executor.res_cols)
                     res.Duoengine.Executor.res_rows);
                `Ok ()))
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Run a SQL query against a bundled database (CSV output)")
    Term.(ret (const run $ db_arg $ sql_arg))

let () =
  let doc = "Dual-specification SQL query synthesis (Duoquest)" in
  let info = Cmd.info "duoquest" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ query_cmd; complete_cmd; schema_cmd; export_cmd; run_sql_cmd ]))
