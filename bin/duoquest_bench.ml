(* Run individual experiments from the reproduction harness:
   `duoquest_bench fig10 table6` or `duoquest_bench --list`. *)

open Cmdliner

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List all experiment ids and exit.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use small generated splits (smoke-test scale).")

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids to run (default: all).")

let run list quick ids =
  if list then begin
    List.iter
      (fun id ->
        Printf.printf "%-20s %s\n" id
          (Option.value ~default:"" (Duobench.Experiments.describe id)))
      Duobench.Experiments.all_ids;
    `Ok ()
  end
  else begin
    (* DUOQUEST_DOMAINS > 1 shards workload generation and the
       simulation runs over one shared pool (results are identical to
       the sequential run; only wall-clock changes). *)
    let domains =
      Duocore.Enumerate.effective_domains
        { Duocore.Enumerate.default_config with
          Duocore.Enumerate.domains = Duocore.Enumerate.domains_from_env () }
    in
    let pool =
      if domains > 1 then Some (Duopar.Pool.create ~domains) else None
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Duopar.Pool.shutdown pool)
      (fun () ->
        let t =
          Duobench.Experiments.create
            ~scale:(if quick then `Quick else `Full)
            ?pool ()
        in
        let ppf = Format.std_formatter in
        let ids = if ids = [] then Duobench.Experiments.all_ids else ids in
        let rec go = function
          | [] -> `Ok ()
          | id :: rest -> (
              match Duobench.Experiments.run t ppf id with
              | Ok () -> go rest
              | Error e -> `Error (false, e))
        in
        go ids)
  end

let () =
  let doc = "Regenerate the Duoquest paper's tables and figures" in
  let cmd =
    Cmd.v
      (Cmd.info "duoquest_bench" ~version:"1.0.0" ~doc)
      Term.(ret (const run $ list_arg $ quick_arg $ ids_arg))
  in
  exit (Cmd.eval cmd)
